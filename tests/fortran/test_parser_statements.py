"""Statement-level parsing: every statement kind."""

import pytest

from repro.errors import ParseError
from repro.fortran import ast as A
from repro.fortran.parser import parse_source


def main_body(body_src: str, decls: str = "") -> list:
    src = f"program p\n{decls}{body_src}end program p\n"
    return parse_source(src, resolve=False).main.body


def one(body_src: str, decls: str = "") -> A.Stmt:
    body = main_body(body_src, decls)
    assert len(body) == 1
    return body[0]


class TestAssignment:
    def test_scalar(self):
        s = one("x = 1\n")
        assert s == A.Assign(target=A.Var("x"), value=A.IntLit(1))

    def test_array_element(self):
        s = one("v(i, j) = 0.0\n")
        assert isinstance(s.target, A.Apply)

    def test_keyword_named_variable(self):
        # 'end', 'do', 'if' are not reserved words
        s = one("if(i) = 3\n")
        assert isinstance(s, A.Assign)

    def test_trailing_junk_raises(self):
        with pytest.raises(ParseError):
            one("x = 1 2\n")


class TestDoLoops:
    def test_block_do(self):
        s = one("do i = 1, 10\n  x = i\nend do\n")
        assert isinstance(s, A.DoLoop)
        assert s.var == "i"
        assert s.start == A.IntLit(1)
        assert s.stop == A.IntLit(10)
        assert s.step is None
        assert len(s.body) == 1

    def test_do_with_step(self):
        s = one("do i = 10, 1, -2\n end do\n")
        assert s.step == A.UnOp("-", A.IntLit(2))

    def test_enddo_spelling(self):
        s = one("do i = 1, 2\nenddo\n")
        assert isinstance(s, A.DoLoop)

    def test_labeled_do(self):
        s = one("do 10 i = 1, 5\n  x = i\n10 continue\n")
        assert isinstance(s, A.DoLoop)
        assert s.end_label == 10
        assert isinstance(s.body[-1], A.Continue)
        assert s.body[-1].label == 10

    def test_nested_shared_terminator(self):
        s = one("do 10 i = 1, 5\ndo 10 j = 1, 5\n  x = i + j\n10 continue\n")
        assert isinstance(s, A.DoLoop)
        inner = s.body[0]
        assert isinstance(inner, A.DoLoop)
        assert inner.end_label == 10
        # the labeled CONTINUE lives in the innermost loop
        assert isinstance(inner.body[-1], A.Continue)

    def test_do_while(self):
        s = one("do while (x .lt. 10)\n  x = x + 1\nend do\n")
        assert isinstance(s, A.DoWhile)
        assert s.cond.op == ".lt."

    def test_unterminated_raises(self):
        with pytest.raises(ParseError):
            one("do i = 1, 2\n x = 1\n")


class TestIf:
    def test_if_then(self):
        s = one("if (x .gt. 0) then\n  y = 1\nend if\n")
        assert isinstance(s, A.IfBlock)
        assert len(s.arms) == 1

    def test_if_else(self):
        s = one("if (a) then\n x = 1\nelse\n x = 2\nend if\n")
        assert len(s.arms) == 2
        assert s.arms[1][0] is None

    def test_elseif_chain(self):
        s = one("if (a) then\n x = 1\nelse if (b) then\n x = 2\n"
                "else\n x = 3\nend if\n")
        assert len(s.arms) == 3
        assert s.arms[1][0] == A.Var("b")

    def test_elseif_one_word(self):
        s = one("if (a) then\n x = 1\nelseif (b) then\n x = 2\nend if\n")
        assert len(s.arms) == 2

    def test_endif_one_word(self):
        s = one("if (a) then\nendif\n")
        assert isinstance(s, A.IfBlock)

    def test_logical_if(self):
        s = one("if (x .lt. 0) x = 0\n")
        assert isinstance(s, A.LogicalIf)
        assert isinstance(s.stmt, A.Assign)

    def test_logical_if_goto(self):
        s = one("if (err .lt. eps) goto 20\n20 continue\n".replace(
            "\n20 continue\n", "\n"))
        assert isinstance(s, A.LogicalIf)
        assert isinstance(s.stmt, A.Goto)

    def test_nested_if(self):
        s = one("if (a) then\n if (b) then\n x = 1\n end if\nend if\n")
        inner = s.arms[0][1][0]
        assert isinstance(inner, A.IfBlock)


class TestControl:
    def test_goto(self):
        body = main_body("goto 10\n10 continue\n")
        assert body[0] == A.Goto(target=10)

    def test_go_to_two_words(self):
        body = main_body("go to 10\n10 continue\n")
        assert body[0] == A.Goto(target=10)

    def test_computed_goto(self):
        body = main_body("goto (10, 20), k\n10 continue\n20 continue\n")
        assert body[0] == A.ComputedGoto(targets=[10, 20],
                                         selector=A.Var("k"))

    def test_continue(self):
        assert isinstance(one("continue\n"), A.Continue)

    def test_exit_cycle(self):
        body = main_body("do i = 1, 2\n exit\n cycle\nend do\n")
        assert isinstance(body[0].body[0], A.ExitStmt)
        assert isinstance(body[0].body[1], A.CycleStmt)

    def test_stop(self):
        assert one("stop\n") == A.StopStmt(message=None)
        assert one("stop 'done'\n") == A.StopStmt(message="done")

    def test_return(self):
        src = "subroutine s()\nreturn\nend subroutine s\n"
        cu = parse_source(src, resolve=False)
        assert isinstance(cu.units[0].body[0], A.ReturnStmt)

    def test_call(self):
        s = one("call foo(x, 1)\n")
        assert s.name == "foo"
        assert len(s.args) == 2

    def test_call_no_args(self):
        assert one("call foo()\n").args == []
        assert one("call foo\n").args == []


class TestDeclarations:
    def test_typed_array(self):
        cu = parse_source("program p\nreal v(10, 20), x\nend\n",
                          resolve=False)
        decl = cu.main.decls[0]
        assert decl.type_name == "real"
        assert decl.entities[0] == ("v", [A.IntLit(10), A.IntLit(20)])
        assert decl.entities[1] == ("x", [])

    def test_explicit_bounds(self):
        cu = parse_source("program p\nreal v(0:11)\nend\n", resolve=False)
        dims = cu.main.decls[0].entities[0][1]
        assert dims[0] == A.RangeExpr(A.IntLit(0), A.IntLit(11))

    def test_double_precision(self):
        cu = parse_source("program p\ndouble precision x\nend\n",
                          resolve=False)
        assert cu.main.decls[0].type_name == "doubleprecision"

    def test_kind_star(self):
        cu = parse_source("program p\nreal*8 x\nend\n", resolve=False)
        assert cu.main.decls[0].kind == A.IntLit(8)

    def test_dimension(self):
        cu = parse_source("program p\ndimension v(5)\nreal v\nend\n",
                          resolve=False)
        assert isinstance(cu.main.decls[0], A.DimensionStmt)

    def test_parameter(self):
        cu = parse_source("program p\nparameter (n = 10, m = 2 * 5)\nend\n",
                          resolve=False)
        stmt = cu.main.decls[0]
        assert stmt.assignments[0] == ("n", A.IntLit(10))

    def test_common(self):
        cu = parse_source("program p\ncommon /blk/ a(5), b\nend\n",
                          resolve=False)
        stmt = cu.main.decls[0]
        assert stmt.block == "blk"
        assert stmt.entities[0][0] == "a"

    def test_blank_common(self):
        cu = parse_source("program p\ncommon a, b\nend\n", resolve=False)
        assert cu.main.decls[0].block == ""

    def test_implicit_none(self):
        cu = parse_source("program p\nimplicit none\nend\n", resolve=False)
        assert isinstance(cu.main.decls[0], A.ImplicitStmt)

    def test_implicit_other_raises(self):
        with pytest.raises(ParseError):
            parse_source("program p\nimplicit real (a-h)\nend\n",
                         resolve=False)

    def test_data_simple(self):
        cu = parse_source("program p\nreal x, y\ndata x, y / 1.0, 2.0 /\nend\n",
                          resolve=False)
        stmt = cu.main.decls[1]
        assert stmt.names == ["x", "y"]
        assert len(stmt.values) == 2

    def test_data_repeat_count(self):
        cu = parse_source("program p\nreal v(3)\ndata v / 3*0.0 /\nend\n",
                          resolve=False)
        assert len(cu.main.decls[1].values) == 3

    def test_save_external_intrinsic(self):
        cu = parse_source(
            "program p\nsave x\nexternal f\nintrinsic abs\nend\n",
            resolve=False)
        assert isinstance(cu.main.decls[0], A.SaveStmt)
        assert cu.main.decls[1].names == ["f"]
        assert cu.main.decls[2].names == ["abs"]


class TestIo:
    def test_read_star(self):
        s = one("read *, x, y\n")
        assert isinstance(s, A.ReadStmt)
        assert s.unit is None
        assert len(s.items) == 2

    def test_read_unit(self):
        s = one("read (5, *) x\n")
        assert s.unit == A.IntLit(5)

    def test_write_unit(self):
        s = one("write (6, *) 'hi', x\n")
        assert isinstance(s, A.WriteStmt)
        assert s.unit == A.IntLit(6)

    def test_print(self):
        s = one("print *, x\n")
        assert isinstance(s, A.WriteStmt)
        assert s.unit is None

    def test_implied_do(self):
        s = one("write (6, *) (v(i), i = 1, n)\n")
        item = s.items[0]
        assert isinstance(item, A.ImpliedDo)
        assert item.var == "i"
        assert item.items[0] == A.Apply("v", [A.Var("i")])

    def test_nested_implied_do(self):
        s = one("write (6, *) ((v(i, j), j = 1, m), i = 1, n)\n")
        outer = s.items[0]
        assert isinstance(outer, A.ImpliedDo)
        assert isinstance(outer.items[0], A.ImpliedDo)

    def test_open_close(self):
        body = main_body("open (unit = 9, file = 'data')\nclose (9)\n")
        assert isinstance(body[0], A.OpenStmt)
        assert isinstance(body[1], A.CloseStmt)

    def test_format_kept_verbatim(self):
        # a FORMAT after executable statements stays in the body
        body = main_body("x = 1\n100 format (f10.2, i5)\n")
        assert isinstance(body[1], A.FormatStmt)
        assert body[1].label == 100

    def test_format_before_executables_goes_to_decls(self):
        cu = parse_source("program p\n100 format (i5)\nx = 1\nend\n",
                          resolve=False)
        assert isinstance(cu.main.decls[0], A.FormatStmt)
