"""Error types: hierarchy, source coordinates, messages."""

import pytest

from repro import errors
from repro.fortran.parser import parse_source


class TestHierarchy:
    def test_all_derive_from_reproerror(self):
        for name in ("SourceError", "LexError", "ParseError",
                     "SemanticError", "DirectiveError", "AnalysisError",
                     "PartitionError", "CodegenError", "RuntimeCommError",
                     "InterpError", "SimulationError"):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_source_errors_are_source_errors(self):
        for name in ("LexError", "ParseError", "SemanticError",
                     "DirectiveError"):
            assert issubclass(getattr(errors, name), errors.SourceError)


class TestCoordinates:
    def test_parse_error_location(self):
        with pytest.raises(errors.ParseError) as exc_info:
            parse_source("program p\nx = ((1\nend\n", filename="f.f90")
        err = exc_info.value
        assert err.filename == "f.f90"
        assert err.line == 2
        assert "f.f90:2:" in str(err)

    def test_lex_error_location(self):
        with pytest.raises(errors.LexError) as exc_info:
            parse_source("program p\nx = 1 @ 2\nend\n")
        assert exc_info.value.line == 2

    def test_bare_message(self):
        err = errors.ParseError("boom", filename="a", line=1, column=2)
        assert err.bare_message == "boom"

    def test_one_catch_all(self):
        # the documented pipeline-boundary idiom
        try:
            parse_source("program p\n???\nend\n")
        except errors.ReproError:
            caught = True
        assert caught
