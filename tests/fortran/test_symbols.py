"""Symbol tables and Apply resolution."""

import pytest

from repro.errors import SemanticError
from repro.fortran import ast as A
from repro.fortran.parser import parse_source
from repro.fortran.symbols import build_symbol_table, resolve_unit


def table_of(src: str):
    cu = parse_source(src)
    return cu.main.symbols, cu


class TestTyping:
    def test_declared_types(self):
        table, _ = table_of(
            "program p\ninteger k\nreal x\nlogical b\nend\n")
        assert table.get("k").type_name == "integer"
        assert table.get("x").type_name == "real"
        assert table.get("b").type_name == "logical"

    def test_implicit_typing_rule(self):
        table, _ = table_of("program p\nq = 1.0\nnum = 2\nend\n")
        assert table.get("q").type_name == "real"
        assert table.get("num").type_name == "integer"

    def test_dummy_args_marked(self):
        cu = parse_source("subroutine s(a, n)\ninteger n\nreal a(n)\nend\n")
        table = cu.units[0].symbols
        assert table.get("a").is_dummy
        assert table.get("n").is_dummy


class TestParameters:
    def test_simple_value(self):
        table, _ = table_of("program p\nparameter (n = 10)\nend\n")
        assert table.get("n").param_value == 10

    def test_arithmetic(self):
        table, _ = table_of(
            "program p\nparameter (n = 4, m = n * 2 + 1)\nend\n")
        assert table.get("m").param_value == 9

    def test_integer_division_truncates(self):
        table, _ = table_of("program p\nparameter (n = 7 / 2)\nend\n")
        assert table.get("n").param_value == 3

    def test_negative(self):
        table, _ = table_of("program p\nparameter (n = -3)\nend\n")
        assert table.get("n").param_value == -3

    def test_non_constant_raises(self):
        with pytest.raises(SemanticError):
            parse_source("program p\nparameter (n = k + 1)\nend\n")


class TestArrays:
    def test_shape(self):
        table, _ = table_of(
            "program p\nparameter (n = 8)\nreal v(n, 2 * n)\nend\n")
        assert table.array_shape("v") == (8, 16)

    def test_explicit_bounds(self):
        table, _ = table_of("program p\nreal v(0:9, -1:1)\nend\n")
        assert table.array_shape("v") == (10, 3)
        assert table.get("v").array.rank == 2

    def test_dimension_statement(self):
        table, _ = table_of("program p\ndimension w(4)\nreal w\nend\n")
        assert table.get("w").is_array
        assert table.get("w").array.type_name == "real"

    def test_extent_errors(self):
        table, _ = table_of("program p\nreal x\nend\n")
        with pytest.raises(SemanticError):
            table.array_shape("x")
        with pytest.raises(SemanticError):
            table.require("missing")


class TestCommon:
    def test_members_recorded(self):
        table, _ = table_of(
            "program p\ncommon /flow/ a(4), b\nreal a, b\nend\n")
        assert table.common_blocks["flow"] == ["a", "b"]
        assert table.get("a").common_block == "flow"
        assert table.get("a").is_array

    def test_common_array_dims_in_common_stmt(self):
        table, _ = table_of("program p\ncommon /c/ v(3, 3)\nreal v\nend\n")
        assert table.array_shape("v") == (3, 3)


class TestResolution:
    def test_array_ref_resolved(self):
        _, cu = table_of("program p\nreal v(5)\nv(1) = v(2) + 1.0\nend\n")
        stmt = cu.main.body[0]
        assert isinstance(stmt.target, A.ArrayRef)
        assert isinstance(stmt.value.left, A.ArrayRef)

    def test_intrinsic_resolved_to_funccall(self):
        _, cu = table_of("program p\nx = abs(y)\nend\n")
        assert isinstance(cu.main.body[0].value, A.FuncCall)

    def test_user_function_resolved(self):
        cu = parse_source(
            "program p\nx = f(1.0)\nend\nreal function f(y)\nf = y\nend\n")
        assert isinstance(cu.main.body[0].value, A.FuncCall)

    def test_unknown_call_marked_external(self):
        _, cu = table_of("program p\nx = mystery(1)\nend\n")
        table = cu.main.symbols
        assert table.get("mystery").is_external

    def test_rank_mismatch_raises(self):
        with pytest.raises(SemanticError):
            parse_source("program p\nreal v(5, 5)\nx = v(1)\nend\n")

    def test_assignment_to_function_raises(self):
        with pytest.raises(SemanticError):
            parse_source("program p\nreal x\nabs(x) = 1.0\nend\n")

    def test_called_subroutine_marked_external(self):
        cu = parse_source(
            "program p\ncall s()\nend\nsubroutine s()\nend\n")
        assert cu.main.symbols.get("s").is_external


class TestBuildOnly:
    def test_build_symbol_table_without_resolve(self):
        cu = parse_source("program p\nreal v(5)\nv(1) = 2.0\nend\n",
                          resolve=False)
        table = build_symbol_table(cu.main)
        assert table.get("v").is_array
        # body still has Apply nodes
        assert isinstance(cu.main.body[0].target, A.Apply)
        resolve_unit(cu.main)
        assert isinstance(cu.main.body[0].target, A.ArrayRef)

    def test_assumed_size_rejected(self):
        with pytest.raises(SemanticError):
            parse_source("subroutine s(v)\nreal v(1:)\nv(1) = 0.0\nend\n")
