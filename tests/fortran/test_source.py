"""Tests for logical-line assembly (fixed and free source forms)."""

import pytest

from repro.errors import LexError
from repro.fortran.source import (
    detect_form,
    split_fixed_form,
    split_free_form,
    split_source,
)


class TestFreeForm:
    def test_simple_lines(self):
        src = split_free_form("x = 1\ny = 2\n")
        assert [l.text for l in src.lines] == ["x = 1", "y = 2"]

    def test_line_numbers(self):
        src = split_free_form("\nx = 1\n\ny = 2\n")
        assert [(l.text, l.line) for l in src.lines] == [("x = 1", 2),
                                                         ("y = 2", 4)]

    def test_trailing_ampersand_continuation(self):
        src = split_free_form("x = 1 + &\n  2\n")
        assert src.lines[0].text == "x = 1 + 2"

    def test_leading_ampersand_on_continuation(self):
        src = split_free_form("x = 1 + &\n  & 2\n")
        assert src.lines[0].text == "x = 1 + 2"

    def test_multiline_continuation(self):
        src = split_free_form("x = 1 + &\n 2 + &\n 3\n")
        assert src.lines[0].text == "x = 1 + 2 + 3"

    def test_comment_lines_skipped(self):
        src = split_free_form("! a comment\nx = 1\n")
        assert len(src.lines) == 1

    def test_trailing_comment_stripped(self):
        src = split_free_form("x = 1  ! trailing\n")
        assert src.lines[0].text == "x = 1"

    def test_exclamation_inside_string_kept(self):
        src = split_free_form("s = 'hello!world'\n")
        assert src.lines[0].text == "s = 'hello!world'"

    def test_label_extraction(self):
        src = split_free_form("10 continue\n")
        assert src.lines[0].label == 10
        assert src.lines[0].text == "continue"

    def test_directive_line(self):
        src = split_free_form("!$acfd status v\nx = 1\n")
        assert src.lines[0].is_directive
        assert src.lines[0].text == "status v"

    def test_unterminated_continuation_raises(self):
        with pytest.raises(LexError):
            split_free_form("x = 1 + &\n")

    def test_ampersand_inside_string_not_continuation(self):
        src = split_free_form("s = 'a & b'\n")
        assert len(src.lines) == 1
        assert src.lines[0].text == "s = 'a & b'"


class TestFixedForm:
    def test_comment_columns(self):
        text = "c a comment\nC also\n* stars too\n      x = 1\n"
        src = split_fixed_form(text)
        assert [l.text for l in src.lines] == ["x = 1"]

    def test_continuation_column_six(self):
        text = "      x = 1 +\n     &    2\n"
        src = split_fixed_form(text)
        assert src.lines[0].text == "x = 1 + 2"

    def test_label_field(self):
        text = "   10 continue\n"
        src = split_fixed_form(text)
        assert src.lines[0].label == 10

    def test_columns_beyond_72_ignored(self):
        stmt = ("      x = 1" + " " * 61 + "junk")[:80]
        src = split_fixed_form(stmt + "\n")
        assert src.lines[0].text == "x = 1"

    def test_directive(self):
        src = split_fixed_form("c$acfd grid 10 10\n      x = 1\n")
        assert src.lines[0].is_directive
        assert src.lines[0].text == "grid 10 10"

    def test_continuation_without_initial_raises(self):
        with pytest.raises(LexError):
            split_fixed_form("     &  2\n")


class TestDetection:
    def test_free_detected_by_ampersand(self):
        assert detect_form("x = 1 + &\n 2\n") == "free"

    def test_fixed_detected_by_comment(self):
        assert detect_form("c comment\n      x = 1\n") == "fixed"

    def test_free_default(self):
        assert detect_form("program p\nend\n") == "free"

    def test_split_source_auto(self):
        src = split_source("      x = 1 +\n     & 2\n", form="fixed")
        assert src.lines[0].text == "x = 1 + 2"

    def test_split_source_bad_form(self):
        with pytest.raises(LexError):
            split_source("x = 1", form="banana")
