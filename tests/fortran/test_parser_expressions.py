"""Expression parsing: precedence, associativity, primaries."""

import pytest

from repro.errors import ParseError
from repro.fortran import ast as A
from repro.fortran.parser import _TokenStream, parse_expression, parse_source
from repro.fortran.tokens import tokenize


def expr(text: str) -> A.Expr:
    ts = _TokenStream(tokenize(text), "<test>", 1)
    out = parse_expression(ts)
    assert ts.at_end(), f"unconsumed input in {text!r}"
    return out


class TestPrimaries:
    def test_int(self):
        assert expr("42") == A.IntLit(42)

    def test_real(self):
        e = expr("1.5")
        assert isinstance(e, A.RealLit)
        assert e.value == 1.5

    def test_d_exponent(self):
        assert expr("1d3").value == 1000.0

    def test_logical(self):
        assert expr(".true.") == A.LogicalLit(True)
        assert expr(".false.") == A.LogicalLit(False)

    def test_string(self):
        assert expr("'hi'") == A.StringLit("hi")

    def test_string_escape(self):
        assert expr("'it''s'") == A.StringLit("it's")

    def test_var_lowercased(self):
        assert expr("Foo") == A.Var("foo")

    def test_apply(self):
        assert expr("v(i, 2)") == A.Apply("v", [A.Var("i"), A.IntLit(2)])

    def test_nested_apply(self):
        e = expr("f(g(x))")
        assert e == A.Apply("f", [A.Apply("g", [A.Var("x")])])

    def test_empty_args(self):
        assert expr("f()") == A.Apply("f", [])


class TestPrecedence:
    def test_mul_before_add(self):
        assert expr("a + b * c") == A.BinOp(
            "+", A.Var("a"), A.BinOp("*", A.Var("b"), A.Var("c")))

    def test_power_before_mul(self):
        assert expr("a * b ** c") == A.BinOp(
            "*", A.Var("a"), A.BinOp("**", A.Var("b"), A.Var("c")))

    def test_power_right_associative(self):
        assert expr("a ** b ** c") == A.BinOp(
            "**", A.Var("a"), A.BinOp("**", A.Var("b"), A.Var("c")))

    def test_add_left_associative(self):
        assert expr("a - b - c") == A.BinOp(
            "-", A.BinOp("-", A.Var("a"), A.Var("b")), A.Var("c"))

    def test_parens_override(self):
        assert expr("(a + b) * c") == A.BinOp(
            "*", A.BinOp("+", A.Var("a"), A.Var("b")), A.Var("c"))

    def test_relational_below_arith(self):
        e = expr("a + b .lt. c * d")
        assert isinstance(e, A.BinOp) and e.op == ".lt."

    def test_and_below_relational(self):
        e = expr("a .lt. b .and. c .gt. d")
        assert e.op == ".and."
        assert e.left.op == ".lt."
        assert e.right.op == ".gt."

    def test_or_below_and(self):
        e = expr("a .and. b .or. c")
        assert e.op == ".or."

    def test_not_unary(self):
        e = expr(".not. a .and. b")
        assert e.op == ".and."
        assert e.left == A.UnOp(".not.", A.Var("a"))

    def test_unary_minus(self):
        assert expr("-a + b") == A.BinOp("+", A.UnOp("-", A.Var("a")),
                                         A.Var("b"))

    def test_unary_minus_with_mul(self):
        # -a * b parses as (-(a)) * b in our grammar via the additive level
        e = expr("-a * b")
        assert isinstance(e, A.UnOp)
        assert isinstance(e.operand, A.BinOp)

    def test_power_unary_exponent(self):
        e = expr("a ** -b")
        assert e == A.BinOp("**", A.Var("a"), A.UnOp("-", A.Var("b")))

    def test_eqv_lowest(self):
        e = expr("a .or. b .eqv. c")
        assert e.op == ".eqv."


class TestSubscripts:
    def test_offset_subscripts(self):
        e = expr("v(i-1, j+1)")
        assert e.args[0] == A.BinOp("-", A.Var("i"), A.IntLit(1))
        assert e.args[1] == A.BinOp("+", A.Var("j"), A.IntLit(1))

    def test_range_subscript(self):
        e = expr("v(1:n)")
        assert e.args[0] == A.RangeExpr(A.IntLit(1), A.Var("n"))


class TestErrors:
    def test_missing_rparen(self):
        with pytest.raises(ParseError):
            expr("(a + b")

    def test_dangling_operator(self):
        with pytest.raises(ParseError):
            expr("a +")

    def test_empty(self):
        with pytest.raises(ParseError):
            expr("")


class TestIntegrationWithPrograms:
    def test_complex_expression_in_program(self):
        cu = parse_source("""\
program p
  real x, y
  x = 1.0
  y = (x + 2.0) ** 2 / (3.0 - x) .lt. 4.0 .and. .true.
end program p
""", resolve=False)
        stmt = cu.main.body[1]
        assert isinstance(stmt.value, A.BinOp)
        assert stmt.value.op == ".and."
