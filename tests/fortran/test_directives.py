"""$acfd directive parsing and validation."""

import pytest

from repro.errors import DirectiveError
from repro.fortran.directives import AcfdDirectives
from repro.fortran.parser import parse_source


def directives_of(lines: str, body: str = "real v(4, 4)\n") -> AcfdDirectives:
    src = f"{lines}program p\n{body}end\n"
    return parse_source(src).directives


class TestParsing:
    def test_full_set(self):
        d = directives_of(
            "!$acfd status u, v\n!$acfd grid 8 4\n!$acfd partition 2 1\n"
            "!$acfd distance 2\n!$acfd frame iter\n",
            body="real u(8, 4), v(8, 4)\n")
        assert d.status_arrays == ["u", "v"]
        assert d.grid_shape == (8, 4)
        assert d.partition == (2, 1)
        assert d.max_distance == 2
        assert d.frame_var == "iter"

    def test_status_accumulates_unique(self):
        d = directives_of(
            "!$acfd status v\n!$acfd status v, w\n!$acfd grid 4 4\n",
            body="real v(4, 4), w(4, 4)\n")
        assert d.status_arrays == ["v", "w"]

    def test_case_normalized(self):
        d = directives_of("!$acfd status V\n!$acfd grid 4 4\n")
        assert d.status_arrays == ["v"]

    def test_3d_grid(self):
        d = directives_of("!$acfd status v\n!$acfd grid 4 4 4\n",
                          body="real v(4, 4, 4)\n")
        assert d.ndims == 3

    def test_dims_map(self):
        d = directives_of(
            "!$acfd status q\n!$acfd grid 4 4\n!$acfd dims q 1 2 0\n",
            body="real q(4, 4, 3)\n")
        assert d.dim_maps["q"] == (0, 1, None)

    def test_no_directives_gives_empty(self):
        cu = parse_source("program p\nend\n")
        assert cu.directives.status_arrays == []


class TestStatusDims:
    def make(self):
        return directives_of(
            "!$acfd status v, q\n!$acfd grid 6 4\n!$acfd dims q 0 1 2\n",
            body="real v(6, 4), q(3, 6, 4)\n")

    def test_default_map_leading_dims(self):
        d = self.make()
        assert d.status_dims("v", 2) == (0, 1)

    def test_default_map_extended_trailing(self):
        d = self.make()
        assert d.status_dims("other", 3) == (0, 1, None)

    def test_explicit_map(self):
        d = self.make()
        assert d.status_dims("q", 3) == (None, 0, 1)

    def test_rank_mismatch_raises(self):
        d = self.make()
        with pytest.raises(DirectiveError):
            d.status_dims("q", 2)


class TestValidation:
    def test_missing_status(self):
        with pytest.raises(DirectiveError):
            directives_of("!$acfd grid 4 4\n")

    def test_missing_grid(self):
        with pytest.raises(DirectiveError):
            directives_of("!$acfd status v\n")

    def test_bad_grid_rank(self):
        with pytest.raises(DirectiveError):
            directives_of("!$acfd status v\n!$acfd grid 4 4 4 4\n")

    def test_partition_rank_mismatch(self):
        with pytest.raises(DirectiveError):
            directives_of(
                "!$acfd status v\n!$acfd grid 4 4\n!$acfd partition 2\n")

    def test_zero_grid_extent(self):
        with pytest.raises(DirectiveError):
            directives_of("!$acfd status v\n!$acfd grid 0 4\n")

    def test_bad_distance(self):
        with pytest.raises(DirectiveError):
            directives_of(
                "!$acfd status v\n!$acfd grid 4 4\n!$acfd distance 0\n")

    def test_unknown_keyword(self):
        with pytest.raises(DirectiveError):
            directives_of("!$acfd status v\n!$acfd grid 4 4\n!$acfd zap\n")

    def test_dims_duplicate_grid_dim(self):
        with pytest.raises(DirectiveError):
            directives_of(
                "!$acfd status v\n!$acfd grid 4 4\n!$acfd dims v 1 1\n")

    def test_dims_out_of_range(self):
        with pytest.raises(DirectiveError):
            directives_of(
                "!$acfd status v\n!$acfd grid 4 4\n!$acfd dims v 1 3\n")

    def test_malformed_grid_numbers(self):
        with pytest.raises(DirectiveError):
            directives_of("!$acfd status v\n!$acfd grid four\n")
