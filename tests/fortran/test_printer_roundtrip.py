"""Printer round-trip: parse(print(ast)) is structurally stable.

Includes a hypothesis strategy generating random small Fortran programs
(expressions + statements over a fixed symbol pool) whose round trip must
be exact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fortran import ast as A
from repro.fortran.parser import parse_source
from repro.fortran.printer import print_compilation_unit, print_expr, print_unit

from tests.conftest import JACOBI_SRC, SEIDEL_SRC


def roundtrip(src: str):
    cu1 = parse_source(src, resolve=False)
    out1 = print_compilation_unit(cu1)
    cu2 = parse_source(out1, resolve=False)
    assert cu1.units == cu2.units, f"round trip changed AST for:\n{src}"
    out2 = print_compilation_unit(cu2)
    assert out1 == out2, "printing is not stable"
    return out1


class TestGoldenRoundTrips:
    def test_jacobi(self):
        roundtrip(JACOBI_SRC)

    def test_seidel(self):
        roundtrip(SEIDEL_SRC)

    def test_all_statement_kinds(self):
        roundtrip("""\
program every
  implicit none
  integer i, j, k, n
  parameter (n = 5)
  real v(n, 0:n+1), x
  common /blk/ c(3)
  real c
  data x / 1.5 /
  do i = 1, n, 2
    do j = 1, n
      v(i, j) = float(i) * 0.5 - v(i, j-1) ** 2
    end do
  end do
  do while (x .lt. 10.0)
    x = x + 1.0
  end do
  if (x .gt. 0.0) then
    k = 1
  else if (x .lt. -1.0) then
    k = 2
  else
    k = 3
  end if
  if (k .eq. 1) x = 0.0
  goto 20
20 continue
  goto (20, 30), k
30 continue
  call sub(x, v)
  read (5, *) x
  write (6, *) 'x =', x, (c(i), i = 1, 3)
  print *, x
  open (unit = 9, file = 'out')
  close (9)
  stop 'done'
end program every

subroutine sub(a, w)
  implicit none
  real a, w(5, 0:6)
  a = a + w(1, 0)
  return
end subroutine sub

real function f(y)
  real y
  f = y * 2.0
end function f
""")

    def test_labeled_do_becomes_block(self):
        out = roundtrip("""\
program p
  do 10 i = 1, 5
    x = i
10 continue
end
""")
        assert "end do" in out

    def test_precedence_preserved(self):
        out = roundtrip("""\
program p
  x = (a + b) * c
  y = a + b * c
  z = -(a + b)
  w = a ** (b + 1)
  l = .not. (p .and. q)
end
""")
        assert "(a + b) * c" in out


class TestExprPrinting:
    def test_minimal_parens(self):
        e = A.BinOp("+", A.Var("a"), A.BinOp("*", A.Var("b"), A.Var("c")))
        assert print_expr(e) == "a + b * c"

    def test_needed_parens(self):
        e = A.BinOp("*", A.BinOp("+", A.Var("a"), A.Var("b")), A.Var("c"))
        assert print_expr(e) == "(a + b) * c"

    def test_left_assoc_subtraction(self):
        e = A.BinOp("-", A.Var("a"), A.BinOp("-", A.Var("b"), A.Var("c")))
        assert print_expr(e) == "a - (b - c)"

    def test_string_quotes(self):
        assert print_expr(A.StringLit("it's")) == "'it''s'"


# --- property-based round trip -------------------------------------------------

_names = st.sampled_from(["x", "y", "zz", "w1"])
_arrays = st.sampled_from(["v", "u"])


def _exprs(depth: int):
    base = st.one_of(
        st.integers(0, 99).map(A.IntLit),
        st.sampled_from([0.5, 1.0, 2.25]).map(lambda v: A.RealLit(v, repr(v))),
        _names.map(A.Var),
    )
    if depth <= 0:
        return base
    sub = _exprs(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["+", "-", "*", "/"]), sub, sub)
          .map(lambda t: A.BinOp(t[0], t[1], t[2])),
        st.tuples(_arrays, sub).map(lambda t: A.Apply(t[0], [t[1]])),
        sub.map(lambda e: A.UnOp("-", e)),
    )


def _stmts(depth: int):
    assign = st.tuples(_names, _exprs(2)).map(
        lambda t: A.Assign(target=A.Var(t[0]), value=t[1]))
    array_assign = st.tuples(_arrays, _exprs(1), _exprs(2)).map(
        lambda t: A.Assign(target=A.Apply(t[0], [t[1]]), value=t[2]))
    base = st.one_of(assign, array_assign)
    if depth <= 0:
        return base
    sub = st.lists(_stmts(depth - 1), min_size=1, max_size=3)
    loop = st.tuples(st.sampled_from(["i", "j", "k"]), _exprs(1), sub).map(
        lambda t: A.DoLoop(var=t[0], start=A.IntLit(1), stop=t[1],
                           body=t[2]))
    cond = st.tuples(_exprs(1), _exprs(1), sub).map(
        lambda t: A.IfBlock(arms=[(A.BinOp(".lt.", t[0], t[1]), t[2])]))
    return st.one_of(base, loop, cond)


@given(st.lists(_stmts(2), min_size=1, max_size=5))
@settings(max_examples=60, deadline=None)
def test_random_program_roundtrip(stmts):
    unit = A.ProgramUnit("program", "p", body=stmts)
    out1 = print_unit(unit)
    cu = parse_source(out1, resolve=False)
    assert cu.units[0].body == stmts
    assert print_unit(cu.units[0]) == out1
