"""Cluster simulation: scaling behavior and model effects."""

import pytest

from repro.core import AutoCFD
from repro.errors import SimulationError
from repro.simulate import ClusterSim, MachineModel, NodeModel, NetworkModel

from tests.conftest import JACOBI_SRC, SEIDEL_SRC

FAST_NET = NetworkModel(latency=1e-6, bandwidth=1e12, shared_medium=False)
SLOW_NET = NetworkModel(latency=5e-3, bandwidth=1e5, shared_medium=True)
CPU = MachineModel(NodeModel(flop_time=1e-7, cache_bytes=1 << 30))


def sim_for(src, dims, machine=CPU, net=FAST_NET, chunks=8, **kw):
    plan = AutoCFD.from_source(src).compile(partition=dims).plan
    return ClusterSim(plan, machine=machine, network=net, chunks=chunks,
                      **kw)


class TestScalingSanity:
    def test_jacobi_near_linear_on_fast_network(self):
        t1 = sim_for(JACOBI_SRC, (1, 1)).run(50).total_time
        t2 = sim_for(JACOBI_SRC, (2, 1)).run(50).total_time
        t4 = sim_for(JACOBI_SRC, (2, 2)).run(50).total_time
        assert t1 / t2 == pytest.approx(2.0, rel=0.2)
        assert t1 / t4 == pytest.approx(4.0, rel=0.3)

    def test_slow_network_hurts(self):
        fast = sim_for(JACOBI_SRC, (2, 2), net=FAST_NET).run(50)
        slow = sim_for(JACOBI_SRC, (2, 2), net=SLOW_NET).run(50)
        assert slow.total_time > fast.total_time
        assert max(slow.comm_time) > max(fast.comm_time)

    def test_pipelined_seidel_serializes_with_barriers(self):
        # whole-face pipelining + barrier syncs: the self-dependent sweep
        # gives almost no speedup
        t1 = sim_for(SEIDEL_SRC, (1, 1), chunks=1).run(50).total_time
        t4 = sim_for(SEIDEL_SRC, (4, 1), chunks=1,
                     barrier_syncs=True).run(50).total_time
        assert t1 / t4 < 2.0  # far below the 4x a Jacobi loop would get

    def test_chunking_improves_pipeline(self):
        coarse = sim_for(SEIDEL_SRC, (4, 1), chunks=1).run(50).total_time
        fine = sim_for(SEIDEL_SRC, (4, 1), chunks=8).run(50).total_time
        assert fine <= coarse

    def test_pipe_wait_attributed(self):
        s = sim_for(SEIDEL_SRC, (4, 1), chunks=1).run(20)
        assert max(s.pipe_wait) > 0.0


class TestMemoryEffects:
    def test_cache_superlinearity(self):
        machine = MachineModel(NodeModel(flop_time=1e-7,
                                         cache_bytes=1 << 10,
                                         knee_bytes=2 << 10,
                                         knee_penalty=3.0))
        t1 = sim_for(JACOBI_SRC, (1, 1), machine=machine).run(40).total_time
        t4 = sim_for(JACOBI_SRC, (2, 2), machine=machine).run(40).total_time
        assert t1 / t4 > 4.0  # superlinear

    def test_oom_reported(self):
        machine = MachineModel(NodeModel(mem_bytes=1 << 10))
        s = sim_for(JACOBI_SRC, (1, 1), machine=machine).run(5)
        assert s.any_oom
        assert s.oom_ranks == [0]

    def test_working_set_shrinks_with_ranks(self):
        s1 = sim_for(JACOBI_SRC, (1, 1)).run(2)
        s4 = sim_for(JACOBI_SRC, (2, 2)).run(2)
        assert max(s4.working_set) < s1.working_set[0]


class TestExtrapolation:
    def test_long_runs_extrapolated_consistently(self):
        sim = sim_for(JACOBI_SRC, (2, 1))
        t100 = sim_for(JACOBI_SRC, (2, 1)).run(100).total_time
        t200 = sim_for(JACOBI_SRC, (2, 1)).run(200).total_time
        # steady state: doubling frames roughly doubles time
        assert t200 / t100 == pytest.approx(2.0, rel=0.05)

    def test_zero_frames_rejected(self):
        with pytest.raises(SimulationError):
            sim_for(JACOBI_SRC, (2, 1)).run(0)

    def test_breakdown_sums_to_total(self):
        s = sim_for(JACOBI_SRC, (2, 1), net=SLOW_NET).run(60)
        for r in range(2):
            parts = s.compute_time[r] + s.comm_time[r] + s.pipe_wait[r]
            assert parts == pytest.approx(s.per_rank[r], rel=0.05)


class TestFaultModeling:
    def _plan(self, *events):
        from repro.faults import FaultEvent, FaultPlan
        return FaultPlan(events=[FaultEvent(*e[:2], **e[2]) for e in events],
                         seed=0)

    def test_straggler_charges_the_afflicted_rank(self):
        plan = self._plan(("straggler", 1, dict(frame=2, frames=3,
                                                seconds=0.2)))
        clean = sim_for(JACOBI_SRC, (2, 1)).run(10)
        hurt = sim_for(JACOBI_SRC, (2, 1), faults=plan).run(10)
        assert hurt.fault_time[1] == pytest.approx(0.6, rel=0.01)
        assert hurt.fault_time[0] == 0.0
        assert hurt.total_time > clean.total_time

    def test_crash_stalls_the_whole_world(self):
        plan = self._plan(("crash", 0, dict(frame=4)))
        sim = sim_for(JACOBI_SRC, (2, 1), faults=plan, restart_cost=1.0,
                      record_timeline=True)
        out = sim.run(10)
        # restart + replay downtime is global: every rank loses time
        assert all(f >= 1.0 for f in out.fault_time)
        assert any(s.cat == "fault" for s in out.spans)

    def test_faulted_runs_are_never_extrapolated(self):
        plan = self._plan(("straggler", 0, dict(frame=90, frames=1,
                                                seconds=0.5)))
        # a fault in the extrapolated tail must still be simulated
        out = sim_for(JACOBI_SRC, (2, 1), faults=plan).run(100)
        assert out.fault_time[0] == pytest.approx(0.5, rel=0.01)

    def test_rollup_carries_the_fault_column(self):
        plan = self._plan(("straggler", 0, dict(frame=1, frames=2,
                                                seconds=0.1)))
        out = sim_for(JACOBI_SRC, (2, 1), faults=plan).run(6)
        roll = out.rollup()
        assert roll.ranks[0].fault == pytest.approx(0.2, rel=0.01)
        assert roll.ranks[1].fault == 0.0


class TestResultHelpers:
    def test_speedup_and_efficiency(self):
        s = sim_for(JACOBI_SRC, (2, 1)).run(30)
        assert s.speedup(s.total_time * 2) == pytest.approx(2.0)
        assert s.efficiency(s.total_time * 2, 2) == pytest.approx(1.0)


class TestSimHealthSamples:
    def test_traffic_counters_scale_with_frames(self):
        short = sim_for(JACOBI_SRC, (2, 1), chunks=1).run(4, warmup=4)
        long = sim_for(JACOBI_SRC, (2, 1), chunks=1).run(8, warmup=8)
        assert sum(long.sent_bytes) == 2 * sum(short.sent_bytes)
        assert sum(long.recv_bytes) == sum(long.sent_bytes)
        assert all(n > 0 for n in long.sent_msgs)

    def test_extrapolated_frames_scale_traffic_exactly(self):
        explicit = sim_for(JACOBI_SRC, (2, 1), chunks=1).run(40,
                                                             warmup=40)
        extrap = sim_for(JACOBI_SRC, (2, 1), chunks=1).run(40, warmup=4)
        assert extrap.sent_bytes == explicit.sent_bytes
        assert extrap.recv_msgs == explicit.recv_msgs

    def test_health_samples_mirror_the_live_board_shape(self):
        out = sim_for(JACOBI_SRC, (2, 1), chunks=1).run(6)
        samples = out.health_samples()
        assert len(samples) == len(out.per_rank)
        for s in samples:
            assert s.state == "done"
            assert s.frame == 5
            assert s.sent_bytes == out.sent_bytes[s.rank]
            assert s.t_s == out.per_rank[s.rank]
