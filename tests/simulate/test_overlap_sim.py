"""Cluster model of overlapped exchanges: hidden latency, never slower.

The simulator must predict the same *direction* the runtime shows
(``acfd bench --drift`` gates on it): an overlapped exchange fused with
its split consumer loop pays the same injection cost, hides flight time
under interior work, and only stalls for the residual — so total time
is never worse than blocking, and the hidden time lands in the roll-up's
``overlap`` column.
"""

import pytest

from repro.codegen.schedule import CommPhase, extract_schedule
from repro.core import AutoCFD
from repro.simulate import ClusterSim, MachineModel, NodeModel, NetworkModel

from tests.conftest import JACOBI_SRC

#: latency-heavy network: plenty of flight time to hide
LAGGY_NET = NetworkModel(latency=2e-3, bandwidth=1e8, shared_medium=False)
CPU = MachineModel(NodeModel(flop_time=1e-7, cache_bytes=1 << 30))


def plans(dims):
    acfd = AutoCFD.from_source(JACOBI_SRC)
    return (acfd.compile(partition=dims, overlap="off").plan,
            acfd.compile(partition=dims, overlap="auto").plan)


class TestSchedule:
    def test_comm_phase_carries_the_overlap_flag(self):
        blocking, overlapped = plans((2, 1))
        off = [p for p in extract_schedule(blocking).phases
               if isinstance(p, CommPhase)]
        on = [p for p in extract_schedule(overlapped).phases
              if isinstance(p, CommPhase)]
        assert all(not p.overlap for p in off)
        assert any(p.overlap for p in on)
        # the copy-loop sync stays blocking in both
        assert not all(p.overlap for p in on)


class TestOverlapModel:
    def test_overlap_never_slower_and_hides_latency(self):
        blocking, overlapped = plans((2, 2))
        t_block = ClusterSim(blocking, machine=CPU,
                             network=LAGGY_NET).run(50)
        t_over = ClusterSim(overlapped, machine=CPU,
                            network=LAGGY_NET).run(50)
        assert t_over.total_time <= t_block.total_time
        assert sum(t_over.overlap_time) > 0.0
        assert sum(t_block.overlap_time) == 0.0

    def test_hidden_time_lands_in_the_rollup(self):
        _, overlapped = plans((2, 2))
        out = ClusterSim(overlapped, machine=CPU,
                         network=LAGGY_NET).run(50)
        roll = out.rollup()
        assert sum(r.overlap for r in roll.ranks) == \
            pytest.approx(sum(out.overlap_time))
        assert roll.hidden_halo_fraction > 0.0
        assert "hidden halo fraction" in roll.table()

    def test_overlap_time_extrapolates_with_frames(self):
        _, overlapped = plans((2, 2))
        sim = ClusterSim(overlapped, machine=CPU, network=LAGGY_NET)
        short = sim.run(50)
        long = ClusterSim(overlapped, machine=CPU,
                          network=LAGGY_NET).run(5000)
        assert sum(long.overlap_time) > 10 * sum(short.overlap_time)

    def test_breakdown_still_sums_to_total(self):
        # overlap is hidden time, not wall time: compute+comm+pipe_wait
        # must still cover each rank's clock
        _, overlapped = plans((2, 2))
        out = ClusterSim(overlapped, machine=CPU,
                         network=LAGGY_NET).run(30)
        for r in range(len(out.per_rank)):
            parts = (out.compute_time[r] + out.comm_time[r]
                     + out.pipe_wait[r])
            assert parts == pytest.approx(out.per_rank[r], rel=1e-6)

    def test_timeline_spans_mark_overlap(self):
        _, overlapped = plans((2, 2))
        sim = ClusterSim(overlapped, machine=CPU, network=LAGGY_NET,
                         record_timeline=True)
        out = sim.run(10)
        cats = {s.cat for s in out.spans}
        assert "overlap" in cats
