"""Calibration utility: fitting the model to target speedups."""

from repro.core import AutoCFD
from repro.simulate.calibrate import Observation, calibrate, score
from repro.simulate.machine import MachineModel, NodeModel
from repro.simulate.network import NetworkModel

from tests.conftest import JACOBI_SRC


def build_plans():
    acfd = AutoCFD.from_source(JACOBI_SRC)
    parts = [(2, 1), (2, 2)]
    plans = {p: acfd.compile(partition=p).plan for p in parts}
    seq = acfd.compile(partition=(1, 1)).plan
    return plans, seq


class TestScore:
    def test_perfect_fit_zero_error(self):
        plans, seq = build_plans()
        machine = MachineModel(NodeModel(flop_time=5e-8))
        network = NetworkModel(latency=1e-3, bandwidth=0.4e6)
        # first measure what the model produces, then score against it
        err, fits = score(plans, seq, [Observation((2, 1), 1.0)],
                          machine, network, chunks=1, frames=20)
        target = fits[0][2]
        err2, _ = score(plans, seq, [Observation((2, 1), target)],
                        machine, network, chunks=1, frames=20)
        assert err2 < 1e-12

    def test_error_symmetric_in_log(self):
        plans, seq = build_plans()
        machine = MachineModel(NodeModel(flop_time=5e-8))
        network = NetworkModel(latency=1e-3, bandwidth=0.4e6)
        _, fits = score(plans, seq, [Observation((2, 1), 1.0)],
                        machine, network, chunks=1, frames=20)
        real = fits[0][2]
        over, _ = score(plans, seq, [Observation((2, 1), real * 2)],
                        machine, network, chunks=1, frames=20)
        under, _ = score(plans, seq, [Observation((2, 1), real / 2)],
                         machine, network, chunks=1, frames=20)
        assert abs(over - under) < 1e-9


class TestCalibrate:
    def test_recovers_reasonable_fit(self):
        plans, seq = build_plans()
        observations = [Observation((2, 1), 1.8),
                        Observation((2, 2), 3.0)]
        # the kernel is tiny: only a slow CPU (compute-dominated regime)
        # can reach these speedups — the search must find it
        result = calibrate(plans, seq, observations,
                           flop_times=(5e-8, 2e-6),
                           latencies=(5e-4, 4e-3),
                           bandwidths=(0.4e6, 1.25e6),
                           chunk_options=(1,),
                           frames=20)
        assert result.machine.node.flop_time == 2e-6
        assert result.error < 1.0
        assert len(result.fits) == 2
        assert "calibration error" in result.summary()

    def test_picks_lower_error_over_alternatives(self):
        plans, seq = build_plans()
        observations = [Observation((2, 1), 1.95)]
        result = calibrate(plans, seq, observations,
                           flop_times=(5e-8,),
                           latencies=(5e-4, 8e-3),
                           bandwidths=(1.25e6,),
                           chunk_options=(1,), frames=20)
        # near-ideal speedup requires the cheap network
        assert result.network.latency == 5e-4
