"""Discrete-event engine, node model, and network model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulate.events import EventQueue
from repro.simulate.machine import MachineModel, NodeModel
from repro.simulate.network import NetworkModel


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        seen = []
        q.schedule(3.0, lambda: seen.append("c"))
        q.schedule(1.0, lambda: seen.append("a"))
        q.schedule(2.0, lambda: seen.append("b"))
        assert q.run() == 3.0
        assert seen == ["a", "b", "c"]

    def test_stable_ties(self):
        q = EventQueue()
        seen = []
        for k in range(5):
            q.schedule(1.0, lambda k=k: seen.append(k))
        q.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_after_relative(self):
        q = EventQueue()
        seen = []
        q.schedule(1.0, lambda: q.after(0.5, lambda: seen.append(q.now)))
        q.run()
        assert seen == [1.5]

    def test_past_scheduling_rejected(self):
        q = EventQueue()
        q.schedule(5.0, lambda: q.schedule(1.0, lambda: None))
        with pytest.raises(SimulationError):
            q.run()

    def test_event_budget(self):
        q = EventQueue()

        def reschedule():
            q.after(1.0, reschedule)

        q.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            q.run(max_events=100)

    def test_len(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        assert len(q) == 1


class TestNodeModel:
    def test_in_cache_factor_one(self):
        node = NodeModel(cache_bytes=1 << 20)
        assert node.cost_factor(1 << 19) == 1.0

    def test_factor_monotone(self):
        node = NodeModel()
        sizes = [2 ** k for k in range(10, 30)]
        factors = [node.cost_factor(s) for s in sizes]
        assert all(a <= b for a, b in zip(factors, factors[1:]))

    @given(ws=st.integers(1, 1 << 30))
    @settings(max_examples=50, deadline=None)
    def test_property_factor_at_least_one(self, ws):
        assert NodeModel().cost_factor(ws) >= 1.0

    def test_knee_raises_cost(self):
        node = NodeModel(knee_bytes=1 << 20)
        below = node.cost_factor((1 << 20) - 1)
        above = node.cost_factor(1 << 22)
        assert above > below + 0.3

    def test_oom_detection(self):
        node = NodeModel(mem_bytes=1 << 20)
        assert node.is_oom(1 << 21)
        assert not node.is_oom(1 << 19)
        assert node.cost_factor(1 << 21) > node.cost_factor(1 << 20) + 10

    def test_op_time_scales(self):
        node = NodeModel(flop_time=2e-8)
        assert node.op_time(0) == 2e-8


class TestNetworkModel:
    def test_message_time(self):
        net = NetworkModel(latency=1e-3, bandwidth=1e6)
        assert net.message_time(1000) == pytest.approx(2e-3)

    def test_injection_no_latency(self):
        net = NetworkModel(latency=1e-3, bandwidth=1e6)
        assert net.injection_time(1000) == pytest.approx(1e-3)

    def test_wire_time(self):
        net = NetworkModel(bandwidth=2e6)
        assert net.wire_time(2_000_000) == pytest.approx(1.0)

    def test_machine_value_bytes(self):
        assert MachineModel().value_bytes == 4
