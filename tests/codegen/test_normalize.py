"""LogicalIf normalization pre-pass."""

from repro.codegen.normalize import normalize_compilation_unit, normalize_unit
from repro.fortran import ast as A
from repro.fortran.parser import parse_source
from repro.interp.pyback import run_compiled


class TestNormalization:
    def test_logical_if_becomes_block(self):
        cu = parse_source("program p\nif (a) x = 1\nend\n", resolve=False)
        normalize_unit(cu.main)
        stmt = cu.main.body[0]
        assert isinstance(stmt, A.IfBlock)
        assert len(stmt.arms) == 1
        assert isinstance(stmt.arms[0][1][0], A.Assign)

    def test_nested_inside_loops(self):
        cu = parse_source(
            "program p\ndo i = 1, 3\n if (a) x = 1\nend do\nend\n",
            resolve=False)
        normalize_compilation_unit(cu)
        loop = cu.main.body[0]
        assert isinstance(loop.body[0], A.IfBlock)

    def test_inside_if_arms(self):
        cu = parse_source("""\
program p
  if (a) then
    if (b) x = 1
  else
    if (c) y = 2
  end if
end
""", resolve=False)
        normalize_compilation_unit(cu)
        outer = cu.main.body[0]
        assert isinstance(outer.arms[0][1][0], A.IfBlock)
        assert isinstance(outer.arms[1][1][0], A.IfBlock)

    def test_label_preserved(self):
        cu = parse_source("program p\n10 if (a) goto 10\nend\n",
                          resolve=False)
        normalize_unit(cu.main)
        assert cu.main.body[0].label == 10

    def test_semantics_preserved(self):
        src = """\
program p
  integer k
  k = 0
  if (k .eq. 0) k = 5
  if (k .eq. 1) k = 9
  write (6, *) k
end
"""
        plain = run_compiled(parse_source(src))
        cu = parse_source(src)
        normalize_compilation_unit(cu)
        normalized = run_compiled(cu)
        assert plain.io.output() == normalized.io.output() == "5"

    def test_do_while_bodies_normalized(self):
        cu = parse_source("""\
program p
  integer k
  k = 0
  do while (k .lt. 3)
    if (k .eq. 0) k = 1
    k = k + 1
  end do
end
""", resolve=False)
        normalize_compilation_unit(cu)
        loop = cu.main.body[1]
        assert isinstance(loop, A.DoWhile)
        assert isinstance(loop.body[0], A.IfBlock)
