"""Workload physical sanity + DO WHILE frame structure support."""

import numpy as np

from repro.apps.aerofoil import AEROFOIL_INPUT, aerofoil_source
from repro.apps.sprayer import sprayer_source
from repro.apps.validation import boundary_holds, check_fields, residual_trend
from repro.core import AutoCFD, verify_equivalence


class TestWorkloadPhysics:
    def test_sprayer_fields_bounded(self):
        acfd = AutoCFD.from_source(sprayer_source(n=40, m=20, iters=20))
        result = acfd.run_sequential(input_text="2.5 10\n")
        checks = check_fields(result, ["vx", "vy", "pr", "sw"])
        assert all(c.ok for c in checks), [c.issues for c in checks]

    def test_sprayer_walls_hold(self):
        acfd = AutoCFD.from_source(sprayer_source(n=40, m=20, iters=10))
        result = acfd.run_sequential(input_text="2.5 10\n")
        # solid walls: vy = 0 on top and bottom rows
        assert boundary_holds(result, "vy", dim=1, index=1, value=0.0)
        assert boundary_holds(result, "vy", dim=1, index=20, value=0.0)

    def test_sprayer_fan_drives_flow(self):
        acfd = AutoCFD.from_source(sprayer_source(n=40, m=20, iters=15))
        still = acfd.run_sequential(input_text="0.0 10\n")
        blowing = acfd.run_sequential(input_text="4.0 10\n")
        assert abs(blowing.array("vx").data).max() \
            > abs(still.array("vx").data).max() + 0.1

    def test_aerofoil_fields_bounded(self):
        acfd = AutoCFD.from_source(
            aerofoil_source(nx=16, ny=10, nz=6, iters=10, stages=2))
        result = acfd.run_sequential(input_text=AEROFOIL_INPUT)
        checks = check_fields(result, list("uvwpt"))
        assert all(c.ok for c in checks), [c.issues for c in checks]

    def test_aerofoil_surface_noslip(self):
        acfd = AutoCFD.from_source(
            aerofoil_source(nx=16, ny=10, nz=6, iters=5, stages=2))
        result = acfd.run_sequential(input_text=AEROFOIL_INPUT)
        # w is the wall-normal component: the surface plane pins it to
        # zero and no sweep rewrites k = 1 (the others are re-relaxed
        # along the surface by design)
        assert boundary_holds(result, "w", dim=2, index=1, value=0.0)

    def test_residual_trend_classifier(self):
        assert residual_trend([1.0, 0.5, 0.2]) == "converging"
        assert residual_trend([1.0, 1.0, 1.0]) == "stalled"
        assert residual_trend([1.0, 5.0, 100.0]) == "diverging"
        assert residual_trend([float("nan")]) == "stalled"


class TestDoWhileFrame:
    """The frame loop written as DO WHILE (a §5.2 structure)."""

    SRC = """\
!$acfd status v, vn
!$acfd grid 16 10
program wloop
  implicit none
  integer n, m, i, j, it
  parameter (n = 16, m = 10)
  real v(n, m), vn(n, m), err
  do i = 1, n
    do j = 1, m
      v(i, j) = float(i)
    end do
  end do
  err = 1.0
  it = 0
  do while (err .gt. 1.0e-3 .and. it .lt. 10)
    it = it + 1
    err = 0.0
    do i = 2, n - 1
      do j = 2, m - 1
        vn(i, j) = 0.5 * (v(i-1, j) + v(i+1, j))
        err = amax1(err, abs(vn(i, j) - v(i, j)))
      end do
    end do
    do i = 2, n - 1
      do j = 2, m - 1
        v(i, j) = vn(i, j)
      end do
    end do
  end do
  write (6, *) it, err
end
"""

    def test_while_frame_parallel_bitwise(self):
        acfd = AutoCFD.from_source(self.SRC)
        report = verify_equivalence(acfd, [(2, 1), (2, 2)])
        assert report.all_identical, report.summary()

    def test_carried_pair_through_while(self):
        from repro.analysis.dependency import build_sldp
        from repro.analysis.frame import build_frame_program
        acfd = AutoCFD.from_source(self.SRC)
        frame = build_frame_program(acfd.cu)
        pairs = build_sldp(frame)
        carried = [p for p in pairs if p.kind == "carried"]
        assert carried, "the DO WHILE must carry the frame dependence"
