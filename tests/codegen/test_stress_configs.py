"""Stress configurations: larger rank counts, regeneration stability."""

import numpy as np
import pytest

from repro.apps.kernels import gauss_seidel_2d, heat_3d, jacobi_5pt
from repro.core import AutoCFD
from repro.fortran.parser import parse_source
from repro.fortran.printer import print_compilation_unit


class TestManyRanks:
    def test_jacobi_eight_ranks(self):
        acfd = AutoCFD.from_source(jacobi_5pt(n=32, m=16, iters=12))
        seq = acfd.run_sequential()
        par = acfd.compile(partition=(4, 2)).run_parallel()
        assert np.array_equal(par.array("v").data, seq.array("v").data)

    def test_seidel_six_rank_pipeline(self):
        acfd = AutoCFD.from_source(gauss_seidel_2d(n=24, m=18, iters=10))
        seq = acfd.run_sequential()
        par = acfd.compile(partition=(3, 2)).run_parallel()
        assert np.array_equal(par.array("v").data, seq.array("v").data)

    def test_heat3d_eight_ranks(self):
        acfd = AutoCFD.from_source(heat_3d(n=12, m=10, l=8, iters=8))
        seq = acfd.run_sequential()
        par = acfd.compile(partition=(2, 2, 2)).run_parallel()
        assert np.array_equal(par.array("u").data, seq.array("u").data)

    def test_single_row_subgrids(self):
        # extreme cut: every rank owns one grid line along X
        acfd = AutoCFD.from_source(jacobi_5pt(n=6, m=8, iters=5))
        seq = acfd.run_sequential()
        par = acfd.compile(partition=(6, 1)).run_parallel()
        assert np.array_equal(par.array("v").data, seq.array("v").data)


class TestRegenerationStability:
    def test_generated_source_recompiles_identically(self):
        """print -> reparse -> print of the SPMD program is a fixpoint."""
        acfd = AutoCFD.from_source(jacobi_5pt(n=16, m=10, iters=4))
        text1 = acfd.compile(partition=(2, 2)).parallel_source()
        cu2 = parse_source(text1)
        text2 = print_compilation_unit(cu2)
        assert text1 == text2

    def test_compile_is_deterministic(self):
        acfd = AutoCFD.from_source(gauss_seidel_2d(n=16, m=10, iters=4))
        a = acfd.compile(partition=(2, 1))
        b = acfd.compile(partition=(2, 1))
        assert a.parallel_source() == b.parallel_source()
        assert a.plan.syncs_before == b.plan.syncs_before
        assert [s.placement_slot for s in a.plan.syncs] \
            == [s.placement_slot for s in b.plan.syncs]

    def test_repeated_runs_identical(self):
        """The threaded runtime introduces no nondeterminism: pipelined
        order and reductions are fully determined by the dependences."""
        acfd = AutoCFD.from_source(gauss_seidel_2d(n=16, m=12, iters=8))
        compiled = acfd.compile(partition=(2, 2))
        first = compiled.run_parallel()
        second = compiled.run_parallel()
        assert np.array_equal(first.array("v").data,
                              second.array("v").data)
        assert first.output() == second.output()


class TestMixedWorkload:
    """Jacobi and Gauss-Seidel stages in one frame: exchanges and
    pipelines must interleave correctly."""

    SRC = """\
!$acfd status a, b
!$acfd grid 18 12
!$acfd frame it
program mixed
  implicit none
  integer n, m, i, j, it
  parameter (n = 18, m = 12)
  real a(n, m), b(n, m), old, err
  do i = 1, n
    do j = 1, m
      a(i, j) = 0.1 * float(i)
      b(i, j) = 0.2 * float(j)
    end do
  end do
  do it = 1, 6
    do i = 2, n - 1
      do j = 2, m - 1
        b(i, j) = 0.25 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))
      end do
    end do
    err = 0.0
    do i = 2, n - 1
      do j = 2, m - 1
        old = a(i, j)
        a(i, j) = 0.2 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1)) &
          + 0.2 * b(i, j)
        err = amax1(err, abs(a(i, j) - old))
      end do
    end do
  end do
  write (6, *) err
end
"""

    @pytest.mark.parametrize("partition", [(2, 1), (1, 2), (2, 2), (3, 2)],
                             ids=lambda p: "x".join(map(str, p)))
    def test_mixed_bitwise(self, partition):
        acfd = AutoCFD.from_source(self.SRC)
        seq = acfd.run_sequential()
        par = acfd.compile(partition=partition).run_parallel()
        assert par.output() == seq.io.output()
        for name in ("a", "b"):
            assert np.array_equal(par.array(name).data,
                                  seq.array(name).data)

    def test_one_pipe_for_selfdep_stage_only(self):
        acfd = AutoCFD.from_source(self.SRC)
        plan = acfd.compile(partition=(2, 2)).plan
        assert len(plan.pipes) == 1
        assert plan.pipes[0].arrays == ["a"]
