"""SPMD restructuring: the transformed AST and its printed form."""

import pytest

from repro.codegen.normalize import normalize_compilation_unit
from repro.codegen.plan import build_plan
from repro.codegen.restructure import restructure
from repro.errors import CodegenError
from repro.fortran import ast as A
from repro.fortran.parser import parse_source
from repro.fortran.printer import print_compilation_unit
from repro.partition.grid import GridGeometry
from repro.partition.partitioner import Partition

from tests.conftest import JACOBI_SRC, SEIDEL_SRC


def spmd_for(src: str, dims):
    cu = normalize_compilation_unit(parse_source(src))
    plan = build_plan(cu, Partition(GridGeometry(cu.directives.grid_shape),
                                    dims))
    return plan, restructure(plan), print_compilation_unit(
        restructure(plan))


class TestLoopBounds:
    def test_field_loop_clamped(self):
        _, spmd, text = spmd_for(JACOBI_SRC, (2, 1))
        assert "max0(2, acfd_lo(1))" in text
        assert "min0(n - 1, acfd_hi(1))" in text

    def test_uncut_dim_not_clamped(self):
        _, _, text = spmd_for(JACOBI_SRC, (2, 1))
        assert "acfd_lo(2)" not in text

    def test_both_dims_clamped_2x2(self):
        _, _, text = spmd_for(JACOBI_SRC, (2, 2))
        assert "acfd_lo(1)" in text
        assert "acfd_lo(2)" in text

    def test_original_untouched(self):
        cu = normalize_compilation_unit(parse_source(JACOBI_SRC))
        before = print_compilation_unit(cu)
        plan = build_plan(cu, Partition(GridGeometry((24, 16)), (2, 1)))
        restructure(plan)
        assert print_compilation_unit(cu) == before


class TestDeclarations:
    def test_status_arrays_ghosted(self):
        _, _, text = spmd_for(JACOBI_SRC, (2, 1))
        assert "v(acfd_lb('v', 1):acfd_ub('v', 1), m)" in text

    def test_non_status_dim_kept(self):
        _, _, text = spmd_for(JACOBI_SRC, (2, 1))
        # second dim uncut: original extent m preserved
        assert ":acfd_ub('v', 2)" not in text


class TestCommunicationInsertion:
    def test_exchange_calls_present(self):
        plan, _, text = spmd_for(JACOBI_SRC, (2, 1))
        for sync in plan.syncs:
            if plan.overlap_enabled(sync.sync_id):
                # overlapped: split into a nonblocking begin/finish pair
                assert f"acfd_exchange_begin({sync.sync_id}" in text
                assert f"acfd_exchange_finish({sync.sync_id}" in text
            else:
                assert f"acfd_exchange({sync.sync_id}" in text

    def test_exchange_passes_arrays(self):
        plan, _, text = spmd_for(JACOBI_SRC, (2, 1))
        assert any(f"acfd_exchange({s.sync_id}, " in text
                   for s in plan.syncs)

    def test_pipe_calls_around_selfdep_loop(self):
        _, spmd, text = spmd_for(SEIDEL_SRC, (2, 1))
        assert "call acfd_pipe_recv(1, v)" in text
        assert "call acfd_pipe_send(1, v)" in text
        # recv immediately before the loop, send immediately after
        lines = text.splitlines()
        recv_at = next(i for i, l in enumerate(lines)
                       if "acfd_pipe_recv" in l)
        assert lines[recv_at + 1].strip().startswith("do i")

    def test_allreduce_after_reduction_loop(self):
        _, _, text = spmd_for(JACOBI_SRC, (2, 1))
        assert "err = acfd_allreduce_max(err)" in text


class TestIoTransforms:
    SRC = """\
!$acfd status v
!$acfd grid 8 8
program p
  integer i, j
  real v(8, 8), speed
  read (5, *) speed
  do i = 1, 8
    do j = 1, 8
      v(i, j) = speed
    end do
  end do
  write (6, *) speed
end
"""

    def test_read_guarded_and_broadcast(self):
        _, _, text = spmd_for(self.SRC, (2, 1))
        assert "if (acfd_rank() .eq. 0) then" in text
        assert "speed = acfd_bcast(speed)" in text

    def test_write_guarded(self):
        _, _, text = spmd_for(self.SRC, (2, 1))
        assert text.count("if (acfd_rank() .eq. 0) then") >= 2

    def test_array_read_rejected(self):
        src = self.SRC.replace("read (5, *) speed",
                               "read (5, *) v(1, 1)")
        with pytest.raises(CodegenError):
            spmd_for(src, (2, 1))


class TestBoundaryGuards:
    SRC = """\
!$acfd status v
!$acfd grid 8 8
program p
  integer i, j
  real v(8, 8)
  do i = 1, 8
    do j = 1, 8
      v(i, j) = 0.0
    end do
  end do
  do j = 1, 8
    v(1, j) = 5.0
    v(8, j) = v(7, j)
  end do
end
"""

    def test_constant_subscript_write_guarded(self):
        _, _, text = spmd_for(self.SRC, (2, 1))
        assert "if (acfd_owns(1, 1)) then" in text
        assert "if (acfd_owns(1, 8)) then" in text

    def test_no_guard_when_dim_uncut(self):
        _, _, text = spmd_for(self.SRC, (1, 2))
        assert "acfd_owns" not in text

    def test_unguarded_global_read_rejected(self):
        src = """\
!$acfd status v
!$acfd grid 8 8
program p
  integer i, j
  real v(8, 8), w(8, 8)
  do i = 1, 8
    do j = 1, 8
      v(i, j) = 1.0
    end do
  end do
  do i = 1, 8
    do j = 1, 8
      w(i, j) = v(1, j)
    end do
  end do
end
"""
        with pytest.raises(CodegenError):
            spmd_for(src, (2, 1))


class TestGeneratedSourceValidity:
    def test_reparses(self):
        _, _, text = spmd_for(JACOBI_SRC, (2, 2))
        cu2 = parse_source(text)
        assert cu2.main.name == "jacobi"

    def test_seidel_reparses(self):
        _, _, text = spmd_for(SEIDEL_SRC, (2, 2))
        parse_source(text)
