"""Case-study applications: small instances, sequential vs parallel."""

import numpy as np
import pytest

from repro.apps.aerofoil import AEROFOIL_INPUT, aerofoil_source
from repro.apps.sprayer import sprayer_source
from repro.core import AutoCFD

SPRAY_IN = "2.5 12\n"


@pytest.fixture(scope="module")
def small_sprayer():
    acfd = AutoCFD.from_source(sprayer_source(n=40, m=20, iters=6))
    seq = acfd.run_sequential(input_text=SPRAY_IN)
    return acfd, seq


@pytest.fixture(scope="module")
def small_aerofoil():
    acfd = AutoCFD.from_source(
        aerofoil_source(nx=20, ny=12, nz=6, iters=3, stages=2))
    seq = acfd.run_sequential(input_text=AEROFOIL_INPUT)
    return acfd, seq


class TestSprayer:
    @pytest.mark.parametrize("partition", [(2, 1), (1, 2), (2, 2), (4, 1)],
                             ids=lambda p: "x".join(map(str, p)))
    def test_parallel_matches(self, small_sprayer, partition):
        acfd, seq = small_sprayer
        result = acfd.compile(partition=partition).run_parallel(
            input_text=SPRAY_IN)
        assert result.output() == seq.io.output()
        for name in ("vx", "vy", "pr", "sw"):
            assert np.array_equal(result.array(name).data,
                                  seq.array(name).data), name

    def test_table1_shape(self, small_sprayer):
        """Direction-split sweeps: X and Y counts are close, the 2-D cut
        is near their sum, and the reduction is around 90%."""
        acfd, _ = small_sprayer
        x = acfd.compile(partition=(4, 1))
        y = acfd.compile(partition=(1, 4))
        xy = acfd.compile(partition=(4, 4))
        assert abs(x.plan.syncs_before - y.plan.syncs_before) <= 10
        assert xy.plan.syncs_before >= 0.85 * (x.plan.syncs_before
                                               + y.plan.syncs_before)
        for r in (x, y, xy):
            assert r.plan.reduction_percent > 80.0

    def test_read_bcast_used(self, small_sprayer):
        acfd, _ = small_sprayer
        text = acfd.compile(partition=(2, 1)).parallel_source()
        assert "fanspd = acfd_bcast(fanspd)" in text


class TestAerofoil:
    @pytest.mark.parametrize("partition",
                             [(2, 1, 1), (1, 2, 1), (1, 1, 2), (2, 2, 1)],
                             ids=lambda p: "x".join(map(str, p)))
    def test_parallel_matches(self, small_aerofoil, partition):
        acfd, seq = small_aerofoil
        result = acfd.compile(partition=partition).run_parallel(
            input_text=AEROFOIL_INPUT)
        assert result.output() == seq.io.output()
        for name in "uvwpt":
            assert np.array_equal(result.array(name).data,
                                  seq.array(name).data), name

    def test_blayer_is_mirror_pipelined(self, small_aerofoil):
        acfd, _ = small_aerofoil
        res = acfd.compile(partition=(2, 1, 1))
        assert res.plan.pipes, "blayer must be pipelined"
        from repro.analysis.selfdep import SelfDepClass
        assert any(p.klass is SelfDepClass.MIRROR for p in res.plan.pipes)

    def test_sync_counts_direction_dependent(self, small_aerofoil):
        acfd, _ = small_aerofoil
        counts = {}
        for part in [(2, 1, 1), (1, 2, 1), (1, 1, 2)]:
            counts[part] = acfd.compile(partition=part).plan.syncs_before
        assert len(set(counts.values())) >= 2, \
            "direction-split sweeps must give direction-dependent counts"
