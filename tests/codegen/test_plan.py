"""Planning: syncs, pipes, reductions, ghost geometry, Table 1 counts."""

import pytest

from repro.codegen.normalize import normalize_compilation_unit
from repro.codegen.plan import build_plan
from repro.errors import CodegenError
from repro.fortran.parser import parse_source
from repro.partition.grid import GridGeometry
from repro.partition.partitioner import Partition

from tests.conftest import JACOBI_SRC, SEIDEL_SRC


def plan_for(src: str, dims, **kwargs):
    cu = normalize_compilation_unit(parse_source(src))
    grid = GridGeometry(cu.directives.grid_shape)
    return build_plan(cu, Partition(grid, dims), **kwargs)


class TestJacobiPlan:
    def test_syncs_exist(self):
        plan = plan_for(JACOBI_SRC, (2, 1))
        assert plan.syncs
        assert plan.syncs_after <= plan.syncs_before

    def test_no_pipes_for_jacobi(self):
        plan = plan_for(JACOBI_SRC, (2, 2))
        assert plan.pipes == []

    def test_reduction_planned(self):
        plan = plan_for(JACOBI_SRC, (2, 1))
        assert len(plan.reductions) == 1
        assert plan.reductions[0].reductions[0].var == "err"
        assert plan.reductions[0].reductions[0].op == "max"

    def test_ghosts_cover_stencil(self):
        plan = plan_for(JACOBI_SRC, (2, 2))
        assert plan.arrays["v"].ghosts.width(0) == (1, 1)
        assert plan.arrays["v"].ghosts.width(1) == (1, 1)

    def test_uncut_grid_no_syncs(self):
        plan = plan_for(JACOBI_SRC, (1, 1))
        assert plan.syncs == []
        assert plan.syncs_after == 0

    def test_combining_reduces(self):
        combined = plan_for(JACOBI_SRC, (2, 1), combine=True)
        separate = plan_for(JACOBI_SRC, (2, 1), combine=False)
        assert len(combined.syncs) <= len(separate.syncs)
        assert separate.syncs_before == combined.syncs_before

    def test_reduction_percent(self):
        plan = plan_for(JACOBI_SRC, (2, 1))
        assert 0.0 <= plan.reduction_percent <= 100.0


class TestSeidelPlan:
    def test_mirror_pipe_planned(self):
        plan = plan_for(SEIDEL_SRC, (2, 1))
        assert len(plan.pipes) == 1
        assert plan.pipes[0].pipeline_dims == [0]
        assert plan.pipes[0].arrays == ["v"]

    def test_pipe_dims_follow_partition(self):
        plan = plan_for(SEIDEL_SRC, (1, 2))
        assert plan.pipes[0].pipeline_dims == [1]
        plan = plan_for(SEIDEL_SRC, (2, 2))
        assert plan.pipes[0].pipeline_dims == [0, 1]

    def test_pipes_counted_in_table1_numbers(self):
        plan = plan_for(SEIDEL_SRC, (2, 1))
        assert plan.syncs_before == len(plan.active_pairs) + 1
        assert plan.syncs_after == len(plan.syncs) + 1


class TestSyncContents:
    def test_sync_arrays_and_distances(self):
        plan = plan_for(JACOBI_SRC, (2, 1))
        all_arrays = {name for s in plan.syncs for name, _d in s.arrays}
        assert "v" in all_arrays
        for sync in plan.syncs:
            for name, dists in sync.arrays:
                for g, (minus, plus) in dists.items():
                    assert minus >= 0 and plus >= 0

    def test_insertions_resolvable(self):
        plan = plan_for(JACOBI_SRC, (2, 1))
        unit_names = {u.name for u in plan.cu.units}
        for sync in plan.syncs:
            unit, path, mode = sync.insertion
            assert unit in unit_names
            assert mode in ("before", "after", "append", "prepend",
                            "append_body", "append_arm")


class TestSerialSelfDep:
    SRC = """\
!$acfd status v
!$acfd grid 10 10
!$acfd frame it
program p
  integer i, j, it, g(10)
  real v(10, 10)
  do it = 1, 3
    do i = 2, 9
      do j = 2, 9
        v(i, j) = v(g(i), j)
      end do
    end do
  end do
end
"""

    def test_irregular_selfdep_on_cut_dim_rejected(self):
        with pytest.raises(CodegenError):
            plan_for(self.SRC, (2, 1))

    def test_irregular_selfdep_on_uncut_dim_ok(self):
        # g(i) indexes dim 0 only; cutting dim 1 still... the irregular
        # read conservatively blocks any cut of swept dims
        with pytest.raises(CodegenError):
            plan_for(self.SRC, (1, 2))

    def test_uncut_fine(self):
        plan = plan_for(self.SRC, (1, 1))
        assert plan.pipes == []
