"""Generated MPI-Fortran artifact and schedule extraction."""

from repro.codegen.mpi_fortran import print_mpi_fortran
from repro.codegen.schedule import (
    CommPhase,
    ComputePhase,
    ReducePhase,
    extract_schedule,
)
from repro.core import AutoCFD

from tests.conftest import JACOBI_SRC, SEIDEL_SRC


def compile_src(src, partition):
    return AutoCFD.from_source(src).compile(partition=partition)


class TestMpiFortran:
    def test_contains_program_and_runtime(self):
        res = compile_src(JACOBI_SRC, (2, 1))
        text = res.mpi_source()
        assert "program jacobi" in text
        assert "mpi_init" in text
        assert "mpi_sendrecv" in text
        assert "mpi_allreduce" in text

    def test_exchange_wrapper_per_sync(self):
        res = compile_src(JACOBI_SRC, (2, 1))
        text = res.mpi_source()
        for sync in res.plan.syncs:
            if res.plan.overlap_enabled(sync.sync_id):
                assert f"acfd_exchange_begin_{sync.sync_id}" in text
                assert f"acfd_exchange_finish_{sync.sync_id}" in text
            else:
                assert f"acfd_exchange_{sync.sync_id}" in text

    def test_pipeline_wrappers_for_seidel(self):
        res = compile_src(SEIDEL_SRC, (2, 1))
        text = res.mpi_source()
        assert "acfd_pipe_recv_1" in text
        assert "acfd_pipe_send_1" in text
        assert "mirror-image decomposition" in text

    def test_header_mentions_partition(self):
        res = compile_src(JACOBI_SRC, (2, 2))
        assert "partition: 2x2" in res.mpi_source()


class TestScheduleExtraction:
    def test_jacobi_phases(self):
        res = compile_src(JACOBI_SRC, (2, 1))
        sched = extract_schedule(res.plan)
        kinds = [type(p).__name__ for p in sched.phases]
        assert "ComputePhase" in kinds
        assert "CommPhase" in kinds
        assert "ReducePhase" in kinds

    def test_only_frame_phases(self):
        res = compile_src(JACOBI_SRC, (2, 1))
        sched = extract_schedule(res.plan)
        # the three init loops are outside the frame loop
        names = [p.name for p in sched.compute_phases]
        assert len(names) == 2  # stencil loop + copy loop

    def test_pipeline_dims_recorded(self):
        res = compile_src(SEIDEL_SRC, (2, 1))
        sched = extract_schedule(res.plan)
        pipelined = [p for p in sched.compute_phases if p.pipeline_dims]
        assert len(pipelined) == 1
        assert pipelined[0].pipeline_dims == (0,)

    def test_ops_per_point_positive(self):
        res = compile_src(JACOBI_SRC, (2, 2))
        sched = extract_schedule(res.plan)
        for p in sched.compute_phases:
            assert p.ops_per_point >= 1

    def test_comm_phases_match_plan_syncs_in_frame(self):
        res = compile_src(JACOBI_SRC, (2, 1))
        sched = extract_schedule(res.plan)
        assert len(sched.comm_phases) <= len(res.plan.syncs)
        for phase in sched.comm_phases:
            assert phase.arrays
