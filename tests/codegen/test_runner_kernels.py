"""Semantic equivalence: every kernel, sequential vs parallel, bitwise.

This is the system's central correctness claim: the generated SPMD
program, run on the in-process message-passing runtime, reproduces the
sequential program's status arrays exactly — Jacobi-type loops because
each point is computed from identical inputs, and pipelined Gauss-Seidel
loops because mirror-image decomposition preserves the sequential update
order.
"""

import numpy as np
import pytest

import repro.apps.kernels as K
from repro.core import AutoCFD

KERNELS_2D = [
    ("jacobi_5pt", dict(n=18, m=12, iters=30)),
    ("jacobi_9pt", dict(n=18, m=12, iters=20)),
    ("gauss_seidel_2d", dict(n=16, m=12, iters=25)),
    ("sor_2d", dict(n=16, m=12, iters=25)),
    ("redblack_2d", dict(n=16, m=12, iters=20)),
    ("line_sweep_x", dict(n=18, m=10, iters=15)),
]

PARTITIONS_2D = [(2, 1), (1, 2), (2, 2), (3, 1), (4, 1), (2, 3)]


@pytest.mark.parametrize("kernel,params", KERNELS_2D,
                         ids=[k for k, _ in KERNELS_2D])
@pytest.mark.parametrize("partition", PARTITIONS_2D,
                         ids=["x".join(map(str, p)) for p in PARTITIONS_2D])
def test_kernel_parallel_equals_sequential(kernel, params, partition):
    src = getattr(K, kernel)(**params)
    acfd = AutoCFD.from_source(src)
    seq = acfd.run_sequential()
    result = acfd.compile(partition=partition).run_parallel()
    assert result.output() == seq.io.output()
    for name in acfd.directives.status_arrays:
        assert np.array_equal(result.array(name).data,
                              seq.array(name).data), \
            f"{kernel} {partition}: array {name!r} differs"


@pytest.mark.parametrize("partition", [(2, 1, 1), (1, 2, 1), (1, 1, 2),
                                       (2, 2, 1), (2, 1, 2), (2, 2, 2)],
                         ids=lambda p: "x".join(map(str, p)))
def test_heat3d_parallel_equals_sequential(partition):
    src = K.heat_3d(n=10, m=8, l=6, iters=15)
    acfd = AutoCFD.from_source(src)
    seq = acfd.run_sequential()
    result = acfd.compile(partition=partition).run_parallel()
    assert result.output() == seq.io.output()
    assert np.array_equal(result.array("u").data, seq.array("u").data)


class TestTraceCrossCheck:
    """The runtime must perform exactly the planned synchronizations."""

    def test_exchange_count_matches_plan(self):
        src = K.jacobi_5pt(n=14, m=10, iters=7, eps=0.0)
        acfd = AutoCFD.from_source(src)
        compiled = acfd.compile(partition=(2, 1))
        result = compiled.run_parallel()
        # exchanges per rank = init-section syncs once + frame syncs per
        # frame; bound it by plan counts
        frames = 7
        per_rank = result.trace.count("exchange", rank=0)
        n_syncs = len(compiled.plan.syncs)
        assert 0 < per_rank <= n_syncs * (frames + 1)
        # all ranks perform the same number of exchanges
        assert result.trace.count("exchange", rank=1) == per_rank

    def test_pipeline_messages_present_for_seidel(self):
        src = K.gauss_seidel_2d(n=12, m=8, iters=5, eps=0.0)
        acfd = AutoCFD.from_source(src)
        result = acfd.compile(partition=(2, 1)).run_parallel()
        assert result.trace.count("pipeline_send", rank=0) > 0

    def test_no_pipeline_for_jacobi(self):
        src = K.jacobi_5pt(n=14, m=10, iters=5, eps=0.0)
        acfd = AutoCFD.from_source(src)
        result = acfd.compile(partition=(2, 1)).run_parallel()
        assert result.trace.count("pipeline_send") == 0


class TestCombiningDoesNotChangeResults:
    def test_with_and_without_combining(self):
        src = K.jacobi_5pt(n=14, m=10, iters=10)
        acfd = AutoCFD.from_source(src)
        with_c = acfd.compile(partition=(2, 2), combine=True)
        without_c = acfd.compile(partition=(2, 2), combine=False)
        assert len(without_c.plan.syncs) >= len(with_c.plan.syncs)
        a = with_c.run_parallel()
        b = without_c.run_parallel()
        assert np.array_equal(a.array("v").data, b.array("v").data)
