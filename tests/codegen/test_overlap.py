"""Interior/boundary loop splitting around nonblocking exchanges.

The tentpole contract: a halo-synchronized consumer nest is rewritten to

    call acfd_exchange_begin(k, ...)
    do <interior>            ! no ghost reads, runs while messages fly
    call acfd_exchange_finish(k, ...)
    do <boundary strips>     ! the peeled rim that reads ghosts

exactly when safety is provable, and refuses — with a recorded reason —
otherwise, keeping the blocking exchange (the vectorizer's ``Fallback``
discipline).
"""

import pytest

from repro.apps import kernels
from repro.codegen.normalize import normalize_compilation_unit
from repro.codegen.plan import build_plan
from repro.codegen.restructure import restructure
from repro.core.pipeline import AutoCFD
from repro.errors import CodegenError
from repro.fortran.parser import parse_source
from repro.fortran.printer import print_compilation_unit
from repro.partition.grid import GridGeometry
from repro.partition.partitioner import Partition

from tests.conftest import JACOBI_SRC, SEIDEL_SRC


def compiled(src: str, dims, overlap="auto"):
    cu = normalize_compilation_unit(parse_source(src))
    plan = build_plan(cu, Partition(GridGeometry(cu.directives.grid_shape),
                                    dims), overlap=overlap)
    text = print_compilation_unit(restructure(plan))
    return plan, text


def decision(plan, sync_id):
    return next(d for d in plan.overlap_decisions if d.sync_id == sync_id)


class TestSplitStructure:
    def test_jacobi_splits_into_begin_interior_finish_strips(self):
        plan, text = compiled(JACOBI_SRC, (2, 1))
        assert decision(plan, 1).enabled
        assert "call acfd_exchange_begin(1, v)" in text
        assert "call acfd_exchange_finish(1, v)" in text
        assert "acfd_exchange(1," not in text
        # interior is clamped one layer inside the owned block; the two
        # strips cover the peeled rim
        begin_at = text.index("acfd_exchange_begin(1")
        finish_at = text.index("acfd_exchange_finish(1")
        interior = text[begin_at:finish_at]
        assert "acfd_lo(1) + 1" in interior
        assert "acfd_hi(1) - 1" in interior

    def test_2x2_splits_both_dimensions(self):
        plan, text = compiled(JACOBI_SRC, (2, 2))
        assert decision(plan, 1).enabled
        # dim 1 and dim 2 both get interior margins
        begin_at = text.index("acfd_exchange_begin(1")
        finish_at = text.index("acfd_exchange_finish(1")
        interior = text[begin_at:finish_at]
        assert "acfd_lo(1) + 1" in interior
        assert "acfd_lo(2) + 1" in interior
        # four boundary strips after finish (low/high per split dim)
        tail = text[finish_at:]
        assert tail.count("do ") >= 8  # 4 strips x 2-level nests

    def test_mode_off_keeps_blocking_exchange(self):
        plan, text = compiled(JACOBI_SRC, (2, 1), overlap="off")
        assert "acfd_exchange_begin" not in text
        assert "call acfd_exchange(1, v)" in text
        assert all(not d.enabled for d in plan.overlap_decisions)
        assert decision(plan, 1).reason == "overlap disabled (mode off)"

    def test_invalid_mode_rejected(self):
        with pytest.raises(CodegenError, match="overlap mode"):
            compiled(JACOBI_SRC, (2, 1), overlap="maybe")

    def test_reduction_still_allreduced_after_strips(self):
        # err accumulates across interior + strips; the allreduce must
        # come after every partial nest
        _plan, text = compiled(JACOBI_SRC, (2, 1))
        finish_at = text.index("acfd_exchange_finish(1")
        red_at = text.index("acfd_allreduce_max")
        assert red_at > finish_at


class TestRefusals:
    def test_pipelined_consumer_refused(self):
        plan, text = compiled(SEIDEL_SRC, (2, 1))
        d = decision(plan, 1)
        assert not d.enabled
        assert "pipelined" in d.reason
        assert "acfd_exchange_begin" not in text

    def test_diagonal_reader_refused_on_two_cut_dims(self):
        acfd = AutoCFD.from_source(kernels.jacobi_9pt())
        plan = acfd.compile(partition=(2, 2)).plan
        d = decision(plan, 1)
        assert not d.enabled
        assert "corner" in d.reason or "diagonal" in d.reason

    def test_diagonal_reader_allowed_on_one_cut_dim(self):
        # with a single cut dimension there are no corner transfers, so
        # the nine-point stencil overlaps safely
        acfd = AutoCFD.from_source(kernels.jacobi_9pt())
        plan = acfd.compile(partition=(2, 1)).plan
        assert decision(plan, 1).enabled

    def test_scalar_read_after_nest_refused(self):
        # i's exit value changes when the nest is split; reading it
        # right after the nest must refuse the overlap
        src = JACOBI_SRC.replace(
            "    end do\n"
            "    do i = 2, n - 1\n"
            "      do j = 2, m - 1\n"
            "        v(i, j) = vnew(i, j)",
            "    end do\n"
            "    err = err + i\n"
            "    do i = 2, n - 1\n"
            "      do j = 2, m - 1\n"
            "        v(i, j) = vnew(i, j)")
        assert "err = err + i" in src
        plan, text = compiled(src, (2, 1))
        d = decision(plan, 1)
        assert not d.enabled
        assert "'i'" in d.reason
        assert "acfd_exchange_begin" not in text

    def test_scalar_killed_by_later_loop_is_not_live(self):
        # the copy nest reassigns i/j before this read — the kill
        # semantics must not false-positive on it
        src = JACOBI_SRC.replace("    if (err .lt. eps) exit",
                                 "    err = err + i\n"
                                 "    if (err .lt. eps) exit")
        plan, _ = compiled(src, (2, 1))
        assert decision(plan, 1).enabled

    def test_every_sync_gets_a_decision(self):
        plan, _ = compiled(JACOBI_SRC, (2, 1))
        assert {d.sync_id for d in plan.overlap_decisions} \
            == {s.sync_id for s in plan.syncs}
        for d in plan.overlap_decisions:
            assert d.enabled or d.reason


class TestReportAndPlan:
    def test_report_counts_and_refusals(self):
        acfd = AutoCFD.from_source(JACOBI_SRC)
        report = acfd.compile(partition=(2, 1)).report
        assert report.overlap_syncs == 1
        assert all(reason for _sid, reason in report.overlap_refusals)
        d = report.to_dict()
        assert d["overlap_syncs"] == 1
        assert d["overlap_refusals"][0]["reason"]

    def test_plan_overlap_enabled_query(self):
        acfd = AutoCFD.from_source(JACOBI_SRC)
        plan = acfd.compile(partition=(2, 1)).plan
        assert plan.overlap_enabled(1)
        assert not plan.overlap_enabled(2)
        assert not plan.overlap_enabled(999)


class TestMpiFortranArtifact:
    def test_overlapped_sync_prints_nonblocking_wrappers(self):
        acfd = AutoCFD.from_source(JACOBI_SRC)
        result = acfd.compile(partition=(2, 1))
        text = result.mpi_source()
        assert "subroutine acfd_exchange_begin_1(v)" in text
        assert "subroutine acfd_exchange_finish_1(v)" in text
        assert "mpi_irecv" in text
        assert "mpi_isend" in text
        assert "mpi_waitall" in text
        # the non-overlapped sync keeps the blocking sendrecv wrapper
        assert "subroutine acfd_exchange_2(" in text
        assert "mpi_sendrecv" in text

    def test_blocking_mode_prints_only_sendrecv(self):
        acfd = AutoCFD.from_source(JACOBI_SRC)
        result = acfd.compile(partition=(2, 1), overlap="off")
        text = result.mpi_source()
        assert "mpi_isend" not in text
        assert "mpi_waitall" not in text
