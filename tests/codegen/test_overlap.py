"""Interior/boundary loop splitting around nonblocking exchanges.

The tentpole contract: a halo-synchronized consumer nest is rewritten to

    call acfd_exchange_begin(k, ...)
    do <interior>            ! no ghost reads, runs while messages fly
    call acfd_exchange_finish(k, ...)
    do <boundary strips>     ! the peeled rim that reads ghosts

exactly when safety is provable, and refuses — with a recorded reason —
otherwise, keeping the blocking exchange (the vectorizer's ``Fallback``
discipline).
"""

import pytest

from repro.apps import kernels
from repro.codegen.normalize import normalize_compilation_unit
from repro.codegen.plan import build_plan
from repro.codegen.restructure import restructure
from repro.core.pipeline import AutoCFD
from repro.errors import CodegenError
from repro.fortran.parser import parse_source
from repro.fortran.printer import print_compilation_unit
from repro.partition.grid import GridGeometry
from repro.partition.partitioner import Partition

from tests.conftest import JACOBI_SRC, SEIDEL_SRC


def compiled(src: str, dims, overlap="auto"):
    cu = normalize_compilation_unit(parse_source(src))
    plan = build_plan(cu, Partition(GridGeometry(cu.directives.grid_shape),
                                    dims), overlap=overlap)
    text = print_compilation_unit(restructure(plan))
    return plan, text


def decision(plan, sync_id):
    return next(d for d in plan.overlap_decisions if d.sync_id == sync_id)


class TestSplitStructure:
    def test_jacobi_splits_into_begin_interior_finish_strips(self):
        plan, text = compiled(JACOBI_SRC, (2, 1))
        assert decision(plan, 1).enabled
        assert "call acfd_exchange_begin(1, v)" in text
        assert "call acfd_exchange_finish(1, v)" in text
        assert "acfd_exchange(1," not in text
        # interior is clamped one layer inside the owned block; the two
        # strips cover the peeled rim
        begin_at = text.index("acfd_exchange_begin(1")
        finish_at = text.index("acfd_exchange_finish(1")
        interior = text[begin_at:finish_at]
        assert "acfd_lo(1) + 1" in interior
        assert "acfd_hi(1) - 1" in interior

    def test_2x2_splits_both_dimensions(self):
        plan, text = compiled(JACOBI_SRC, (2, 2))
        assert decision(plan, 1).enabled
        # dim 1 and dim 2 both get interior margins
        begin_at = text.index("acfd_exchange_begin(1")
        finish_at = text.index("acfd_exchange_finish(1")
        interior = text[begin_at:finish_at]
        assert "acfd_lo(1) + 1" in interior
        assert "acfd_lo(2) + 1" in interior
        # four boundary strips after finish (low/high per split dim)
        tail = text[finish_at:]
        assert tail.count("do ") >= 8  # 4 strips x 2-level nests

    def test_mode_off_keeps_blocking_exchange(self):
        plan, text = compiled(JACOBI_SRC, (2, 1), overlap="off")
        assert "acfd_exchange_begin" not in text
        assert "call acfd_exchange(1, v)" in text
        assert all(not d.enabled for d in plan.overlap_decisions)
        assert decision(plan, 1).reason == "overlap disabled (mode off)"

    def test_invalid_mode_rejected(self):
        with pytest.raises(CodegenError, match="overlap mode"):
            compiled(JACOBI_SRC, (2, 1), overlap="maybe")

    def test_reduction_still_allreduced_after_strips(self):
        # err accumulates across interior + strips; the allreduce must
        # come after every partial nest
        _plan, text = compiled(JACOBI_SRC, (2, 1))
        finish_at = text.index("acfd_exchange_finish(1")
        red_at = text.index("acfd_allreduce_max")
        assert red_at > finish_at


class TestRefusals:
    def test_pipelined_consumer_refused(self):
        plan, text = compiled(SEIDEL_SRC, (2, 1))
        d = decision(plan, 1)
        assert not d.enabled
        assert "pipelined" in d.reason
        assert "acfd_exchange_begin" not in text

    def test_diagonal_reader_refused_on_two_cut_dims(self):
        acfd = AutoCFD.from_source(kernels.jacobi_9pt())
        plan = acfd.compile(partition=(2, 2)).plan
        d = decision(plan, 1)
        assert not d.enabled
        assert "corner" in d.reason or "diagonal" in d.reason

    def test_diagonal_reader_allowed_on_one_cut_dim(self):
        # with a single cut dimension there are no corner transfers, so
        # the nine-point stencil overlaps safely
        acfd = AutoCFD.from_source(kernels.jacobi_9pt())
        plan = acfd.compile(partition=(2, 1)).plan
        assert decision(plan, 1).enabled

    def test_scalar_read_after_nest_refused(self):
        # i's exit value changes when the nest is split; reading it
        # right after the nest must refuse the overlap
        src = JACOBI_SRC.replace(
            "    end do\n"
            "    do i = 2, n - 1\n"
            "      do j = 2, m - 1\n"
            "        v(i, j) = vnew(i, j)",
            "    end do\n"
            "    err = err + i\n"
            "    do i = 2, n - 1\n"
            "      do j = 2, m - 1\n"
            "        v(i, j) = vnew(i, j)")
        assert "err = err + i" in src
        plan, text = compiled(src, (2, 1))
        d = decision(plan, 1)
        assert not d.enabled
        assert "'i'" in d.reason
        assert "acfd_exchange_begin" not in text

    def test_scalar_killed_by_later_loop_is_not_live(self):
        # the copy nest reassigns i/j before this read — the kill
        # semantics must not false-positive on it
        src = JACOBI_SRC.replace("    if (err .lt. eps) exit",
                                 "    err = err + i\n"
                                 "    if (err .lt. eps) exit")
        plan, _ = compiled(src, (2, 1))
        assert decision(plan, 1).enabled

    def test_every_sync_gets_a_decision(self):
        plan, _ = compiled(JACOBI_SRC, (2, 1))
        assert {d.sync_id for d in plan.overlap_decisions} \
            == {s.sync_id for s in plan.syncs}
        for d in plan.overlap_decisions:
            assert d.enabled or d.reason


class TestReportAndPlan:
    def test_report_counts_and_refusals(self):
        acfd = AutoCFD.from_source(JACOBI_SRC)
        report = acfd.compile(partition=(2, 1)).report
        assert report.overlap_syncs == 1
        assert all(reason for _sid, reason in report.overlap_refusals)
        d = report.to_dict()
        assert d["overlap_syncs"] == 1
        assert d["overlap_refusals"][0]["reason"]

    def test_plan_overlap_enabled_query(self):
        acfd = AutoCFD.from_source(JACOBI_SRC)
        plan = acfd.compile(partition=(2, 1)).plan
        assert plan.overlap_enabled(1)
        assert not plan.overlap_enabled(2)
        assert not plan.overlap_enabled(999)


class TestMpiFortranArtifact:
    def test_overlapped_sync_prints_nonblocking_wrappers(self):
        acfd = AutoCFD.from_source(JACOBI_SRC)
        result = acfd.compile(partition=(2, 1))
        text = result.mpi_source()
        assert "subroutine acfd_exchange_begin_1(v)" in text
        assert "subroutine acfd_exchange_finish_1(v)" in text
        assert "mpi_irecv" in text
        assert "mpi_isend" in text
        assert "mpi_waitall" in text
        # the non-overlapped sync keeps the blocking sendrecv wrapper
        assert "subroutine acfd_exchange_2(" in text
        assert "mpi_sendrecv" in text

    def test_blocking_mode_prints_only_sendrecv(self):
        acfd = AutoCFD.from_source(JACOBI_SRC)
        result = acfd.compile(partition=(2, 1), overlap="off")
        text = result.mpi_source()
        assert "mpi_isend" not in text
        assert "mpi_waitall" not in text


class TestInterprocedural:
    """Split around a call: begin / callee_int / finish / callee_bnd."""

    def test_call_site_splits_into_specialized_invocations(self):
        plan, text = compiled(kernels.jacobi_5pt_sub(n=12, m=8, iters=6),
                              (2, 2))
        d = decision(plan, 1)
        assert d.enabled and d.callee == "relaxx"
        at = [text.index(s) for s in (
            "call acfd_exchange_begin(1, v)",
            "call relaxx_acfd_int()",
            "call acfd_exchange_finish(1, v)",
            "call relaxx_acfd_bnd()")]
        assert at == sorted(at)
        assert "subroutine relaxx_acfd_int" in text
        assert "subroutine relaxx_acfd_bnd" in text

    def test_reduction_init_runs_once_and_allreduce_lands_in_boundary(self):
        # err = 0.0 must execute only in the interior specialization
        # (re-running it in _bnd would discard the interior's partial
        # max); the allreduce finalization must wait for the strips
        _plan, text = compiled(kernels.jacobi_5pt_sub(n=12, m=8, iters=6),
                               (2, 2))
        units = {name: text.split(f"subroutine {name}()", 1)[1]
                 .split("end subroutine", 1)[0]
                 for name in ("relaxx_acfd_int", "relaxx_acfd_bnd")}
        assert "err = 0.0" in units["relaxx_acfd_int"]
        assert "err = 0.0" not in units["relaxx_acfd_bnd"]
        assert "acfd_allreduce_max" not in units["relaxx_acfd_int"]
        assert units["relaxx_acfd_bnd"].rstrip() \
            .endswith("err = acfd_allreduce_max(err)")

    def test_multi_site_callee_refused(self):
        src = kernels.jacobi_5pt_sub(n=12, m=8, iters=6).replace(
            "    call relaxx()\n    call relaxy()",
            "    call relaxx()\n    call relaxx()\n    call relaxy()")
        plan, text = compiled(src, (2, 2))
        d = decision(plan, 1)
        assert not d.enabled and d.callee == "relaxx"
        assert "2 static call sites" in d.reason
        assert "relaxx_acfd_int" not in text

    def test_status_array_actual_argument_refused(self):
        # passing a halo array by argument aliases it under a second
        # name inside the callee — the footprint summary can't see
        # through that, so the split must refuse
        src = kernels.jacobi_5pt_sub(n=12, m=8, iters=6)
        src = src.replace("    call relaxx()", "    call relaxx(v)")
        src = src.replace(
            "subroutine relaxx()\n  implicit none\n"
            "  integer n, m, i, j\n  parameter (n = 12, m = 8)",
            "subroutine relaxx(w)\n  implicit none\n"
            "  integer n, m, i, j\n  parameter (n = 12, m = 8)\n"
            "  real w(n, m)")
        plan, text = compiled(src, (2, 2))
        d = decision(plan, 1)
        assert not d.enabled
        assert "status array 'v' is passed" in d.reason
        assert "acfd_exchange_begin" not in text

    def test_report_carries_callee_in_decisions(self):
        acfd = AutoCFD.from_source(kernels.jacobi_5pt_sub(n=12, m=8,
                                                          iters=6))
        report = acfd.compile(partition=(2, 2)).report
        decisions = report.to_dict()["overlap_decisions"]
        hit = next(d for d in decisions if d["enabled"])
        assert hit["callee"] == "relaxx"

    def test_mpi_artifact_notes_the_interprocedural_split(self):
        acfd = AutoCFD.from_source(kernels.jacobi_5pt_sub(n=12, m=8,
                                                          iters=6))
        text = acfd.compile(partition=(2, 2)).mpi_source()
        assert ("c  interprocedural split: interior runs as "
                "relaxx_acfd_int, boundary as relaxx_acfd_bnd") in text
        assert "subroutine relaxx_acfd_int" in text
        assert "subroutine relaxx_acfd_bnd" in text
