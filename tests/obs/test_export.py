"""Chrome-trace export: schema validation on a real parallel run."""

import json

import pytest

from repro.core import AutoCFD
from repro.obs import build_export, chrome_trace, runtime_spans
from repro.obs.export import write_chrome_trace
from repro.obs.spans import Span

SRC = """\
!$acfd status v
!$acfd grid 16 8
!$acfd frame iter
program flow
  implicit none
  integer n, m, i, j, iter
  parameter (n = 16, m = 8)
  real v(n, m), vnew(n, m)
  do i = 1, n
    do j = 1, m
      v(i, j) = i + j
    end do
  end do
  do iter = 1, 3
    do i = 2, n - 1
      do j = 2, m - 1
        vnew(i, j) = 0.25 * (v(i-1,j) + v(i+1,j) + v(i,j-1) + v(i,j+1))
      end do
    end do
    do i = 2, n - 1
      do j = 2, m - 1
        v(i, j) = vnew(i, j)
      end do
    end do
  end do
end program flow
"""


@pytest.fixture(scope="module")
def run():
    acfd = AutoCFD.from_source(SRC)
    result = acfd.compile(partition=(2, 1))
    par = result.run_parallel()
    return acfd, result, par


class TestChromeTraceSchema:
    def test_complete_event_schema(self, run):
        acfd, _result, par = run
        data = build_export(compiler=acfd.obs, trace=par.trace)
        assert set(data) == {"traceEvents", "displayTimeUnit"}
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert complete, "export carries no duration events"
        for e in complete:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(e)
            assert e["ts"] >= 0.0
            assert e["dur"] >= 0.0
            assert isinstance(e["pid"], int) and e["pid"] >= 1
            assert isinstance(e["tid"], int)

    def test_ranks_are_tids_on_the_runtime_process(self, run):
        acfd, result, par = run
        data = build_export(compiler=acfd.obs, trace=par.trace)
        meta = {(e["pid"], e["args"]["name"])
                for e in data["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        pid_by_name = {name: pid for pid, name in meta}
        assert set(pid_by_name) == {"compiler", "runtime"}
        runtime_tids = {e["tid"] for e in data["traceEvents"]
                        if e["ph"] == "X"
                        and e["pid"] == pid_by_name["runtime"]}
        assert runtime_tids == set(range(result.plan.partition.size))

    def test_compiler_phases_present(self, run):
        acfd, _result, par = run
        data = build_export(compiler=acfd.obs, trace=par.trace)
        names = {e["name"] for e in data["traceEvents"] if e["ph"] == "X"}
        for phase in ("parse", "dependency-analysis", "codegen-restructure",
                      "sync-combining"):
            assert phase in names

    def test_json_serializable_and_written(self, run, tmp_path):
        acfd, _result, par = run
        data = build_export(compiler=acfd.obs, trace=par.trace)
        path = write_chrome_trace(str(tmp_path / "out.trace.json"), data)
        loaded = json.loads(open(path, encoding="utf-8").read())
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == len(data["traceEvents"])

    def test_runtime_track_aligned_after_compile(self, run):
        """Compilation happened before the run, so with the epoch
        alignment no runtime span may start before the first compiler
        span."""
        acfd, _result, par = run
        data = build_export(compiler=acfd.obs, trace=par.trace)
        by_pid: dict[int, list] = {}
        for e in data["traceEvents"]:
            if e["ph"] == "X":
                by_pid.setdefault(e["pid"], []).append(e["ts"])
        assert min(by_pid[1]) <= min(by_pid[2])


class TestTrackMerging:
    def test_runtime_spans_envelope_names(self, run):
        _acfd, _result, par = run
        spans = runtime_spans(par.trace)
        names = {s.name for s in spans}
        assert any(n.startswith("exchange#") for n in names)
        assert all(s.track == "runtime" for s in spans)

    def test_sim_track(self, run):
        from repro.simulate import ClusterSim
        _acfd, result, _par = run
        sim = ClusterSim(result.plan, record_timeline=True)
        out = sim.run(3)
        assert out.spans, "record_timeline collected no spans"
        data = build_export(sim_spans=out.spans)
        cats = {e["cat"] for e in data["traceEvents"] if e["ph"] == "X"}
        assert "compute" in cats
        assert "halo" in cats

    def test_normalizes_earliest_ts_to_zero(self):
        spans = [Span("a", t0=5.0, t1=6.0), Span("b", t0=7.0, t1=7.5)]
        data = chrome_trace([("compiler", spans, 0.0)])
        ts = [e["ts"] for e in data["traceEvents"] if e["ph"] == "X"]
        assert min(ts) == 0.0
        assert max(ts) == pytest.approx(2e6)
