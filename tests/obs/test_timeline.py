"""Timeline roll-ups over synthetic traces with known breakdowns."""

import pytest

from repro.obs.timeline import Timeline
from repro.runtime.trace import Trace, TraceEvent


def _ev(rank, kind, t0, t1, tag=None, peer=None, nbytes=0):
    return TraceEvent(rank, kind, peer, nbytes, tag, t0=t0, t1=t1)


def _two_rank_trace() -> Trace:
    """Two ranks, 10 s windows, hand-placed leaf events.

    rank 0: blocked 2 s, halo 1 s, collective 1 s  -> compute 6 s
    rank 1: blocked 1 s, halo 0.5 s                -> compute 8.5 s
    """
    tr = Trace()
    tr.record(_ev(0, "rank", 0.0, 10.0))
    tr.record(_ev(1, "rank", 0.0, 10.0))
    tr.record(_ev(0, "recv", 1.0, 3.0, peer=1))
    tr.record(_ev(0, "halo_pack", 3.0, 3.5))
    tr.record(_ev(0, "halo_unpack", 3.5, 4.0))
    tr.record(_ev(0, "allreduce", 5.0, 6.0))
    tr.record(_ev(1, "recv", 2.0, 3.0, peer=0))
    tr.record(_ev(1, "halo_pack", 3.0, 3.5))
    return tr


class TestRollup:
    def test_classified_breakdown(self):
        roll = Timeline.from_trace(_two_rank_trace()).rollup()
        r0, r1 = roll.ranks
        assert r0.total == pytest.approx(10.0)
        assert r0.blocked == pytest.approx(2.0)
        assert r0.halo == pytest.approx(1.0)
        assert r0.collective == pytest.approx(1.0)
        assert r0.compute == pytest.approx(6.0)
        assert r1.compute == pytest.approx(8.5)

    def test_load_imbalance_and_critical_path(self):
        roll = Timeline.from_trace(_two_rank_trace()).rollup()
        # busy = compute + halo + send: rank0 7.0, rank1 9.0
        assert roll.critical_path_rank == 1
        assert roll.load_imbalance == pytest.approx(9.0 / 8.0)

    def test_comm_compute_ratio(self):
        roll = Timeline.from_trace(_two_rank_trace()).rollup()
        # comm = blocked+halo+collective+send: (2+1+1) + (1+0.5) = 5.5
        assert roll.comm_time == pytest.approx(5.5)
        assert roll.compute_time == pytest.approx(14.5)
        assert roll.comm_compute_ratio == pytest.approx(5.5 / 14.5)

    def test_window_clips_events(self):
        roll = Timeline.from_trace(_two_rank_trace()).rollup(0.0, 2.0)
        r0 = roll.ranks[0]
        assert r0.total == pytest.approx(2.0)
        assert r0.blocked == pytest.approx(1.0)  # recv [1,3) clipped at 2
        assert r0.compute == pytest.approx(1.0)

    def test_envelope_events_not_double_counted(self):
        tr = _two_rank_trace()
        # an exchange envelope AROUND the halo events must not add time
        tr.record(_ev(0, "exchange", 3.0, 4.0, tag=1))
        roll = Timeline.from_trace(tr).rollup()
        assert roll.ranks[0].halo == pytest.approx(1.0)
        assert roll.ranks[0].compute == pytest.approx(6.0)

    def test_empty_trace(self):
        roll = Timeline.from_trace(Trace()).rollup()
        assert roll.ranks == []
        assert roll.load_imbalance == 1.0
        assert roll.comm_compute_ratio == float("inf")

    def test_fault_events_get_their_own_category(self):
        tr = Trace()
        tr.record(_ev(0, "rank", 0.0, 10.0))
        tr.record(_ev(0, "fault_straggler", 1.0, 2.0))
        tr.record(_ev(0, "checkpoint", 3.0, 3.5, tag=2))
        tr.record(_ev(0, "restore", 4.0, 4.5, tag=2))
        roll = Timeline.from_trace(tr).rollup()
        r0 = roll.ranks[0]
        assert r0.fault == pytest.approx(2.0)
        # lost time must not masquerade as compute
        assert r0.compute == pytest.approx(8.0)
        assert roll.as_dict()["ranks"][0]["fault"] == pytest.approx(2.0)
        assert "fault" in roll.table()

    def test_fault_column_hidden_when_clean(self):
        roll = Timeline.from_trace(_two_rank_trace()).rollup()
        assert all(r.fault == 0.0 for r in roll.ranks)
        assert "fault" not in roll.table()

    def test_as_dict_and_table(self):
        roll = Timeline.from_trace(_two_rank_trace()).rollup()
        d = roll.as_dict()
        assert d["source"] == "runtime"
        assert len(d["ranks"]) == 2
        table = roll.table()
        assert "comm/compute ratio" in table
        assert "critical-path rank 1" in table


class TestFrames:
    def test_recurring_exchange_delimits_frames(self):
        tr = Trace()
        tr.record(_ev(0, "rank", 0.0, 9.0))
        for f in range(3):
            base = f * 3.0
            tr.record(_ev(0, "exchange", base + 0.5, base + 1.0, tag=1))
            tr.record(_ev(0, "exchange", base + 2.0, base + 2.5, tag=2))
        frames = Timeline.from_trace(tr).frames()
        assert len(frames) == 3
        # windows tile the rank window with cuts at the recurring sync
        assert frames[0] == (0.0, 3.5)
        assert frames[-1][1] == 9.0

    def test_single_frame_without_recurrence(self):
        tr = Trace()
        tr.record(_ev(0, "rank", 0.0, 5.0))
        tr.record(_ev(0, "exchange", 1.0, 2.0, tag=1))
        assert Timeline.from_trace(tr).frames() == [(0.0, 5.0)]

    def test_per_frame_rollups(self):
        tr = Trace()
        tr.record(_ev(0, "rank", 0.0, 6.0))
        tr.record(_ev(0, "exchange", 0.0, 1.0, tag=1))
        tr.record(_ev(0, "recv", 0.0, 1.0, peer=1))
        tr.record(_ev(0, "exchange", 3.0, 4.0, tag=1))
        tr.record(_ev(0, "recv", 3.0, 4.0, peer=1))
        rolls = Timeline.from_trace(tr).per_frame()
        assert len(rolls) == 2
        assert rolls[0].ranks[0].blocked == pytest.approx(1.0)


class TestRollupEdgeCases:
    def test_zero_recorded_frames(self):
        """A trace with no events: no frames, no per-frame roll-ups,
        and the whole-run roll-up is empty but well-formed."""
        tl = Timeline.from_trace(Trace())
        assert tl.frames() == []
        assert tl.per_frame() == []
        assert tl.span() == (0.0, 0.0)
        roll = tl.rollup()
        assert roll.ranks == []
        assert roll.load_imbalance == 1.0
        assert roll.critical_path_rank == 0
        assert roll.table()  # renders without blowing up

    def test_events_without_rank_envelope(self):
        """Frames on a trace whose rank never emitted its envelope."""
        tr = Trace()
        tr.record(_ev(0, "recv", 1.0, 2.0))
        tl = Timeline.from_trace(tr)
        assert tl.rank_window(0) == (1.0, 2.0)
        assert tl.frames() == [(1.0, 2.0)]

    def test_single_rank_balance_is_exactly_one(self):
        """One rank: load imbalance must be exactly 1.0 (max == mean)
        with no division blowups, and it is its own critical path."""
        tr = Trace()
        tr.record(_ev(0, "rank", 0.0, 4.0))
        tr.record(_ev(0, "recv", 1.0, 2.0))
        roll = Timeline.from_trace(tr).rollup()
        assert len(roll.ranks) == 1
        assert roll.load_imbalance == 1.0
        assert roll.critical_path_rank == 0
        assert roll.ranks[0].compute == pytest.approx(3.0)

    def test_single_rank_zero_busy_time(self):
        """A rank that spent its whole window blocked: mean busy is 0,
        the imbalance factor must fall back to 1.0, not divide by 0."""
        tr = Trace()
        tr.record(_ev(0, "rank", 0.0, 2.0))
        tr.record(_ev(0, "recv", 0.0, 2.0))
        roll = Timeline.from_trace(tr).rollup()
        assert roll.ranks[0].busy == 0.0
        assert roll.load_imbalance == 1.0

    def test_collective_only_trace(self):
        """A trace holding nothing but collective spans: all non-idle
        time classifies as collective, compute absorbs the rest, and
        the comm/compute ratio stays finite while compute exists."""
        tr = Trace()
        for r in (0, 1):
            tr.record(_ev(r, "rank", 0.0, 4.0))
            tr.record(_ev(r, "barrier", 0.0, 1.0))
            tr.record(_ev(r, "allreduce", 1.0, 2.0))
            tr.record(_ev(r, "bcast", 2.0, 3.0))
        roll = Timeline.from_trace(tr).rollup()
        for rb in roll.ranks:
            assert rb.collective == pytest.approx(3.0)
            assert rb.blocked == 0.0
            assert rb.halo == 0.0
            assert rb.compute == pytest.approx(1.0)
        assert roll.comm_compute_ratio == pytest.approx(6.0 / 2.0)
        assert roll.load_imbalance == 1.0

    def test_collective_covering_whole_window(self):
        """Collectives filling the entire window: compute is 0 and the
        comm/compute ratio degrades to inf instead of raising."""
        tr = Trace()
        tr.record(_ev(0, "rank", 0.0, 2.0))
        tr.record(_ev(0, "allreduce", 0.0, 2.0))
        roll = Timeline.from_trace(tr).rollup()
        assert roll.ranks[0].compute == 0.0
        assert roll.comm_compute_ratio == float("inf")


class TestObserveTraceHistograms:
    def test_durations_feed_category_histograms(self):
        from repro.obs import MetricsRegistry, observe_trace_histograms
        reg = MetricsRegistry()
        tr = _two_rank_trace()
        observe_trace_histograms(reg, tr)
        snap = reg.snapshot()
        assert snap["runtime.blocked_s"]["count"] == 2   # two recvs
        assert snap["runtime.halo_s"]["count"] == 3      # pack/unpack
        assert snap["runtime.collective_s"]["count"] == 1
        assert snap["runtime.recv_wait_s"]["count"] == 2
        assert snap["runtime.blocked_s"]["sum"] == pytest.approx(3.0)

    def test_envelopes_ignored(self):
        from repro.obs import MetricsRegistry, observe_trace_histograms
        reg = MetricsRegistry()
        tr = Trace()
        tr.record(_ev(0, "rank", 0.0, 10.0))
        tr.record(_ev(0, "exchange", 0.0, 1.0, tag=1))
        observe_trace_histograms(reg, tr)
        assert reg.snapshot() == {}


class TestTraceIntegration:
    def test_trace_timeline_shortcut(self):
        tl = _two_rank_trace().timeline()
        assert isinstance(tl, Timeline)
        assert tl.size == 2

    def test_rank_window_prefers_rank_event(self):
        tr = Trace()
        tr.record(_ev(0, "recv", 2.0, 3.0))
        tr.record(_ev(0, "rank", 1.0, 5.0))
        assert Timeline.from_trace(tr).rank_window(0) == (1.0, 5.0)
