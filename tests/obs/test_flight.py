"""Flight recorder ring semantics: ordering, wraparound, shared attach."""

from repro.obs.flight import KIND_CODES, KIND_NAMES, FlightRecorder


class TestRing:
    def test_tail_is_oldest_first(self):
        rec = FlightRecorder(1, slots=8)
        for i in range(5):
            rec.push(0, KIND_CODES["send"], peer=1, nbytes=10 * i,
                     tag=i, extra=0)
        tail = rec.tail(0)
        assert [e.tag for e in tail] == [0, 1, 2, 3, 4]
        assert all(e.kind == "send" for e in tail)
        assert rec.pushed(0) == 5

    def test_wraparound_keeps_last_n(self):
        rec = FlightRecorder(1, slots=4)
        for i in range(10):
            rec.push(0, KIND_CODES["recv"], peer=0, nbytes=0, tag=i,
                     extra=0)
        tail = rec.tail(0)
        assert len(tail) == 4
        assert [e.tag for e in tail] == [6, 7, 8, 9]
        # cursor keeps counting, so the drop count is recoverable
        assert rec.pushed(0) - len(tail) == 6

    def test_negative_peer_and_tag_decode_to_none(self):
        rec = FlightRecorder(1)
        rec.push(0, KIND_CODES["frame"], peer=-1, nbytes=0, tag=-1,
                 extra=7)
        ev = rec.tail(0)[0]
        assert ev.peer is None
        assert ev.tag is None
        assert ev.extra == 7

    def test_rows_are_independent_per_rank(self):
        rec = FlightRecorder(3, slots=4)
        rec.push(1, KIND_CODES["barrier"], -1, 0, -1, 0)
        assert rec.tail(0) == []
        assert rec.tail(2) == []
        assert [e.kind for e in rec.tail(1)] == ["barrier"]

    def test_timestamps_rebase_against_epoch_plus_shift(self):
        rec = FlightRecorder(1)
        rec.push(0, KIND_CODES["send"], 1, 8, 0, 0)
        ev_raw = rec.tail(0)[0]
        ev_shifted = rec.tail(0, shift_s=100.0)[0]
        assert ev_shifted.t_s - ev_raw.t_s == 100.0
        assert 0.0 <= ev_raw.t_s < 5.0  # epoch stamped at reset

    def test_kind_table_round_trips(self):
        assert KIND_NAMES[0] == ""  # 0 must stay the empty-slot marker
        for name, code in KIND_CODES.items():
            assert KIND_NAMES[code] == name


class TestSharedMemory:
    def test_attach_sees_creator_pushes_and_vice_versa(self):
        rec = FlightRecorder(2, slots=8, shared=True)
        try:
            other = FlightRecorder.attach(rec.name, 2, 8)
            rec.push(0, KIND_CODES["send"], 1, 64, 5, 0)
            other.push(1, KIND_CODES["recv"], 0, 64, 5, 0)
            assert [e.kind for e in other.tail(0)] == ["send"]
            assert [e.kind for e in rec.tail(1)] == ["recv"]
            other.close()
        finally:
            rec.close(unlink=True)

    def test_local_recorder_has_no_name(self):
        rec = FlightRecorder(1)
        assert rec.name is None
        rec.close()
