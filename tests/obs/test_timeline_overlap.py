"""Timeline accounting for the nonblocking exchange's overlap events.

The ``overlap`` span is the in-flight window *under* interior compute:
it must be booked in its own column — never subtracted from compute,
never added to comm — and drive the hidden-halo-fraction roll-up.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import Timeline, observe_trace_histograms
from repro.runtime.trace import Trace, TraceEvent


def _ev(rank, kind, t0, t1, tag=None, peer=None, nbytes=0):
    return TraceEvent(rank, kind, peer, nbytes, tag, t0=t0, t1=t1)


def _overlapped_trace() -> Trace:
    """One rank, 10 s window: 3 s in-flight overlap, 1 s residual wait."""
    tr = Trace()
    tr.record(_ev(0, "rank", 0.0, 10.0))
    tr.record(_ev(0, "halo_pack", 0.5, 1.0))
    tr.record(_ev(0, "overlap", 1.0, 4.0, tag=1))
    tr.record(_ev(0, "recv", 4.0, 5.0, peer=1))
    tr.record(_ev(0, "halo_unpack", 5.0, 5.5))
    tr.record(_ev(0, "exchange", 0.5, 5.5, tag=1))
    return tr


class TestOverlapRollup:
    def test_overlap_booked_separately(self):
        roll = Timeline.from_trace(_overlapped_trace()).rollup()
        r0 = roll.ranks[0]
        assert r0.overlap == pytest.approx(3.0)
        # compute = total - blocked - halo (pack+unpack) - ... but NOT
        # minus overlap: the rank computed its interior during it
        assert r0.compute == pytest.approx(10.0 - 1.0 - 1.0)
        assert r0.blocked == pytest.approx(1.0)
        # hidden time is not communication wall-clock
        assert r0.comm == pytest.approx(1.0 + 1.0)

    def test_hidden_halo_fraction(self):
        roll = Timeline.from_trace(_overlapped_trace()).rollup()
        assert roll.hidden_halo_fraction == pytest.approx(3.0 / 4.0)
        assert "hidden halo fraction 0.75" in roll.table()
        assert roll.as_dict()["hidden_halo_fraction"] \
            == pytest.approx(0.75)
        assert roll.as_dict()["ranks"][0]["overlap"] == pytest.approx(3.0)

    def test_fraction_zero_without_overlap_events(self):
        tr = Trace()
        tr.record(_ev(0, "rank", 0.0, 4.0))
        tr.record(_ev(0, "recv", 1.0, 2.0, peer=1))
        roll = Timeline.from_trace(tr).rollup()
        assert roll.hidden_halo_fraction == 0.0
        assert "hidden halo fraction" not in roll.table()

    def test_fully_hidden_fraction_is_one(self):
        tr = Trace()
        tr.record(_ev(0, "rank", 0.0, 4.0))
        tr.record(_ev(0, "overlap", 1.0, 2.0, tag=1))
        roll = Timeline.from_trace(tr).rollup()
        assert roll.hidden_halo_fraction == pytest.approx(1.0)


class TestHistograms:
    def test_overlap_durations_feed_their_own_histogram(self):
        reg = MetricsRegistry()
        observe_trace_histograms(reg, _overlapped_trace())
        snap = reg.snapshot()
        assert snap["runtime.overlap_s"]["count"] == 1
        assert snap["runtime.overlap_s"]["max"] == pytest.approx(3.0)
        # overlap must not leak into the blocked histogram
        assert snap["runtime.blocked_s"]["count"] == 1


class TestFrameInference:
    def test_overlapped_exchange_envelope_still_delimits_frames(self):
        # finish() records the same "exchange" envelope as the blocking
        # path, so frame inference keeps working on overlapped runs
        tr = Trace()
        tr.record(_ev(0, "rank", 0.0, 10.0))
        for f in range(3):
            t = f * 3.0
            tr.record(_ev(0, "overlap", t + 0.5, t + 1.5, tag=1))
            tr.record(_ev(0, "exchange", t + 0.2, t + 2.0, tag=1))
        frames = Timeline.from_trace(tr).frames()
        assert len(frames) == 3
