"""CLI surface for the live-telemetry stack: run --live, top, postmortem,
profile --top."""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.obs.health import Telemetry, publish_live, unpublish_live
from repro.obs.postmortem import build_postmortem, write_postmortem

from tests.conftest import JACOBI_SRC


@pytest.fixture
def src_file(tmp_path):
    path = tmp_path / "jacobi.f90"
    path.write_text(JACOBI_SRC)
    return str(path)


class TestRunLive:
    def test_live_run_prints_health_table(self, src_file, capsys):
        assert main(["run", src_file, "-p", "2x1", "--live",
                     "--live-interval", "0.05"]) == 0
        captured = capsys.readouterr()
        assert "identical" in captured.out
        # the final board snapshot lands on stdout, renderer on stderr
        assert "done" in captured.out
        assert "rank state" in captured.out

    def test_live_metrics_port_serves_health_gauges(self, src_file,
                                                    capsys):
        import re
        import urllib.request

        # port 0: the server picks a free port and prints it; fetch it
        # before the process exits by... running after: the server dies
        # with the command, so instead bind and scrape in-process.
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.health import serve_metrics
        reg = MetricsRegistry()
        reg.counter("x").inc()
        tele = Telemetry(1)
        server = serve_metrics(reg, port=0, telemetry=tele)
        try:
            port = server.server_address[1]
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=5) as r:
                text = r.read().decode()
            assert "acfd_health_beat" in text
        finally:
            server.shutdown()
            tele.close()
        # and the CLI flag at least announces the bound port
        assert main(["run", src_file, "-p", "2x1",
                     "--live-metrics-port", "0"]) == 0
        out = capsys.readouterr().out
        assert re.search(r"serving metrics on http://127\.0\.0\.1:\d+",
                         out)


class TestTop:
    def test_once_renders_a_published_board(self, tmp_path, capsys):
        tele = Telemetry(2, shared=True)
        try:
            view = tele.rank_view(0)
            view.start(0)
            view.frame(5)
            path = publish_live(tele, path=str(tmp_path / "live.json"))
            assert main(["top", "--board", path, "--once"]) == 0
            out = capsys.readouterr().out
            assert "compute" in out and "init" in out
            unpublish_live(path)
        finally:
            tele.close()

    def test_missing_board_fails_gracefully(self, tmp_path, capsys):
        bad = str(tmp_path / "gone.json")
        assert main(["top", "--board", bad, "--once"]) == 1
        assert "cannot attach" in capsys.readouterr().err

    def test_stale_discovery_file_fails_gracefully(self, tmp_path,
                                                   capsys):
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(
            {"spec": {"size": 2, "slots": 64, "board": "psm_gone",
                      "flight": "psm_gone2"}, "pid": 0}))
        assert main(["top", "--board", str(path), "--once"]) == 1
        assert "cannot attach" in capsys.readouterr().err


class TestPostmortemCommand:
    def _write_report(self, tmp_path):
        tele = Telemetry(2)
        view = tele.rank_view(1)
        view.start(0)
        view.frame(3)
        err = ReproError("rank 1 worker process died without reporting")
        rep = build_postmortem(error=err, size=2, telemetry=tele)
        tele.close()
        return write_postmortem(rep, str(tmp_path))

    def test_renders_report(self, tmp_path, capsys):
        path = self._write_report(tmp_path)
        assert main(["postmortem", path]) == 0
        out = capsys.readouterr().out
        assert "postmortem: killed" in out
        assert "dead rank 1" in out

    def test_json_dump(self, tmp_path, capsys):
        path = self._write_report(tmp_path)
        assert main(["postmortem", path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "acfd-postmortem-v1"


class TestProfileTop:
    def test_top_flag_caps_rank_tables(self, src_file, tmp_path,
                                       capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["profile", src_file, "-p", "2x1", "--top", "1",
                     "--frames", "4"]) == 0
        out = capsys.readouterr().out
        assert "1 more ranks elided (top 1 by blocked time)" in out
