"""Automated postmortems: classification, correlation, crash drills.

The ``livesmoke``-marked classes run real worlds on the process
executor — injected deadlocks and genuine ``SIGKILL`` deaths — and
assert the postmortem names the wait-for cycle, the dead rank, its
last heartbeat frame, the latest common checkpoint, and the neighbors'
flight tails salvaged from shared memory.
"""

import json
import os
import signal

import numpy as np
import pytest

from repro.errors import ReproError, RuntimeDeadlockError
from repro.obs.health import Telemetry
from repro.obs.postmortem import (
    build_postmortem,
    load_postmortem,
    render_postmortem,
    write_postmortem,
)
from repro.runtime import spmd_run

# -- rank bodies (module-level: the process executor pickles them) -----------------


def _deadlock_body(comm):
    """Ranks 0 and 1 wait on each other with nothing in flight."""
    comm.recv(source=1 - comm.rank, tag=9)


def _suicide_body(comm):
    """Rank 1 dies by real SIGKILL after a frame of useful work."""
    payload = np.zeros(16, dtype=np.float64)
    if comm.rank == 0:
        comm.send(1, payload, tag=2)
        comm.recv(source=1, tag=3)
    else:
        comm.recv(source=0, tag=2)
        os.kill(os.getpid(), signal.SIGKILL)


# -- classification over synthetic errors ------------------------------------------


class TestClassification:
    def _report(self, error, size=2, **kw):
        return build_postmortem(error=error, size=size, **kw)

    def test_deadlock_cycle_lifted_from_error_text(self):
        err = ReproError("deadlock detected: wait-for cycle rank 0 -> "
                         "rank 1 -> rank 0 (all blocked in recv)")
        rep = self._report(err)
        assert rep["cause"]["kind"] == "deadlock"
        assert rep["wait_cycle"] == [0, 1, 0]

    def test_worker_death_names_the_dead_rank(self):
        err = ReproError("rank 3 worker process died without reporting "
                         "(exit code -9; killed?)")
        rep = self._report(err, size=4)
        assert rep["cause"]["kind"] == "killed"
        assert rep["cause"]["rank"] == 3

    def test_injected_crash_names_rank_over_failed_wrapper(self):
        err = ReproError("rank 1 failed: InjectedFaultError: injected "
                         "crash on rank 1 at frame 8 (plan seed 0)")
        rep = self._report(err)
        assert rep["cause"]["kind"] == "crash"
        assert rep["cause"]["rank"] == 1

    def test_recovery_exhausted_supersedes_inner_cause(self):
        err = ReproError("recovery exhausted after 3 restarts; last "
                         "error: rank 0 failed: injected crash on "
                         "rank 0 at frame 2")
        rep = self._report(err)
        assert rep["cause"]["kind"] == "recovery-exhausted"
        assert rep["cause"]["rank"] == 0

    def test_plain_comm_error_is_comm(self):
        rep = self._report(ReproError("receive timed out"))
        assert rep["cause"]["kind"] == "comm"
        assert rep["cause"]["rank"] is None


class TestDocument:
    def test_write_load_round_trip_is_content_addressed(self, tmp_path):
        rep = build_postmortem(error=ReproError("boom"), size=2)
        path = write_postmortem(rep, str(tmp_path))
        assert os.path.basename(path).startswith("postmortem_")
        loaded = load_postmortem(path)
        assert loaded["cause"]["error"] == "boom"
        # identical content -> identical name (sha-addressed)
        assert write_postmortem(loaded, str(tmp_path)) == path

    def test_render_contains_all_sections(self):
        tele = Telemetry(2)
        view = tele.rank_view(1)
        view.start(0)
        view.frame(4)
        view.checkpoint(4)
        view.sent(0, 64, tag=1)
        err = ReproError("rank 1 worker process died without reporting")
        rep = build_postmortem(error=err, size=2, telemetry=tele)
        tele.close()
        text = render_postmortem(rep)
        assert "postmortem: killed in a 2-rank world" in text
        assert "dead rank 1" in text
        assert "last heartbeat frame 4" in text
        assert "last checkpoint 4" in text
        assert "neighbors [0]" in text
        assert "flight tail, rank 1" in text

    def test_divergence_and_frontier_from_heartbeat_frames(self):
        tele = Telemetry(3)
        for rank, frame in ((0, 7), (1, 4), (2, 7)):
            view = tele.rank_view(rank)
            view.start(0)
            view.frame(frame)
        rep = build_postmortem(error=ReproError("x"), size=3,
                               telemetry=tele)
        tele.close()
        assert rep["divergence_frame"] == 4
        assert rep["frontier_frame"] == 7


class TestThreadDeadlock:
    def test_deadlock_postmortem_names_wait_cycle(self):
        tele = Telemetry(2)
        with pytest.raises(RuntimeDeadlockError) as exc_info:
            spmd_run(2, _deadlock_body, telemetry=tele, timeout=30.0)
        rep = build_postmortem(error=exc_info.value, size=2,
                               telemetry=tele)
        tele.close()
        assert rep["cause"]["kind"] == "deadlock"
        assert rep["wait_cycle"] in ([0, 1, 0], [1, 0, 1])
        # both ranks' boards ended blocked-or-failed, not done
        assert all(r["state"] in ("blocked", "failed")
                   for r in rep["ranks"])


@pytest.mark.livesmoke
class TestProcessDeadlock:
    def test_deadlock_postmortem_names_wait_cycle(self):
        tele = Telemetry(2, shared=True)
        try:
            with pytest.raises(RuntimeDeadlockError) as exc_info:
                spmd_run(2, _deadlock_body, executor="process",
                         telemetry=tele, timeout=30.0)
            rep = build_postmortem(error=exc_info.value, size=2,
                                   telemetry=tele)
            assert rep["cause"]["kind"] == "deadlock"
            assert rep["wait_cycle"] in ([0, 1, 0], [1, 0, 1])
        finally:
            tele.close()


@pytest.mark.livesmoke
class TestProcessSigkill:
    def test_real_sigkill_postmortem_from_shared_memory(self):
        """The corpse's final moments come out of shm, not cooperation."""
        tele = Telemetry(2, shared=True)
        try:
            with pytest.raises(ReproError) as exc_info:
                spmd_run(2, _suicide_body, executor="process",
                         telemetry=tele, timeout=30.0)
            rep = build_postmortem(error=exc_info.value, size=2,
                                   telemetry=tele)
            assert rep["cause"]["kind"] == "killed"
            dead = rep["dead_rank"]
            assert dead["rank"] == 1
            assert 0 in dead["neighbors"]
            # rank 1's recv before the kill survived in its flight ring
            kinds = [e["kind"] for e in rep["flight"]["1"]]
            assert "recv" in kinds
            # the survivor's tail shows it waiting on the corpse
            kinds0 = [e["kind"] for e in rep["flight"]["0"]]
            assert "send" in kinds0
        finally:
            tele.close()

    def test_injected_crash_via_run_recovered_writes_postmortem(
            self, tmp_path):
        """run_recovered on the process executor: the injected crash is
        a real SIGKILL; the autopsy names rank, heartbeat frame, and
        the latest common checkpoint."""
        from repro.core import AutoCFD
        from repro.faults import FaultEvent, FaultPlan, run_recovered

        from tests.conftest import JACOBI_SRC

        compiled = AutoCFD.from_source(JACOBI_SRC).compile(
            partition=(2, 1))
        plan = FaultPlan(events=[FaultEvent("crash", 1, frame=3)],
                         seed=0)
        pm_dir = tmp_path / "pm"
        with pytest.raises(ReproError) as exc_info:
            run_recovered(compiled.plan, compiled.spmd_cu,
                          fault_plan=plan, ckpt_dir=str(tmp_path),
                          recover=False, executor="process",
                          timeout=30.0, postmortem_dir=str(pm_dir))
        exc = exc_info.value
        rep = exc.postmortem
        assert rep["cause"]["kind"] == "crash"
        assert rep["cause"]["rank"] == 1
        dead = rep["dead_rank"]
        assert dead["rank"] == 1
        assert dead["last_frame"] == 3
        assert rep["checkpoint"]["latest_common_frame"] is not None
        assert rep["faults"] and rep["faults"][0]["kind"] == "crash"
        # the file landed where asked, named by content
        path = exc.postmortem_path
        assert os.path.dirname(path) == str(pm_dir)
        with open(path) as fh:
            assert json.load(fh)["cause"]["rank"] == 1


class TestRecoveredThreadPostmortem:
    def test_no_recover_attaches_postmortem_without_writing(
            self, tmp_path):
        from repro.core import AutoCFD
        from repro.faults import FaultEvent, FaultPlan, run_recovered

        from tests.conftest import JACOBI_SRC

        compiled = AutoCFD.from_source(JACOBI_SRC).compile(
            partition=(2, 1))
        plan = FaultPlan(events=[FaultEvent("crash", 0, frame=2)],
                         seed=4)
        with pytest.raises(ReproError) as exc_info:
            run_recovered(compiled.plan, compiled.spmd_cu,
                          fault_plan=plan, ckpt_dir=str(tmp_path),
                          recover=False, timeout=30.0)
        exc = exc_info.value
        assert exc.postmortem["cause"]["kind"] == "crash"
        assert exc.postmortem["cause"]["rank"] == 0
        assert not hasattr(exc, "postmortem_path")
        # nothing written anywhere without postmortem_dir
        assert not list(tmp_path.glob("postmortem_*.json"))
