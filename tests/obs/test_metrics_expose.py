"""Prometheus exposition: HELP lines, escaping, and a round-trip parse.

The parser below is deliberately small but honest about the format: it
un-escapes HELP text and label values, so any escaping bug in
``expose_text`` / ``prom_escape_*`` breaks the round trip.
"""

import re

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    prom_escape_help,
    prom_escape_label,
)

_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>.*)\})? (?P<value>\S+)$')
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)='
                       r'"(?P<val>(?:\\.|[^"\\])*)"')


def _unescape(text: str) -> str:
    return (text.replace("\\\\", "\x00").replace("\\n", "\n")
            .replace('\\"', '"').replace("\x00", "\\"))


def parse_exposition(text: str) -> dict:
    """Parse Prometheus text format into {name: {...}} metric entries."""
    metrics: dict = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            metrics.setdefault(name, {})["help"] = _unescape(help_text)
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            metrics.setdefault(name, {})["type"] = kind
            continue
        m = _SAMPLE_RE.match(line)
        assert m, f"unparseable sample line: {line!r}"
        labels = {lm.group("key"): _unescape(lm.group("val"))
                  for lm in _LABEL_RE.finditer(m.group("labels") or "")}
        series = m.group("name")
        value = float(m.group("value"))
        entry = metrics.setdefault(series, {})
        entry.setdefault("samples", []).append((labels, value))
    return metrics


class TestHelpLines:
    def test_counter_gauge_histogram_help(self):
        reg = MetricsRegistry()
        reg.counter("c", help="counts things").inc(2)
        reg.gauge("g", help="gauges things").set(1.5)
        reg.histogram("h", help="times things").observe(0.3)
        parsed = parse_exposition(reg.expose_text())
        assert parsed["acfd_c"]["help"] == "counts things"
        assert parsed["acfd_g"]["help"] == "gauges things"
        assert parsed["acfd_h"]["help"] == "times things"
        assert parsed["acfd_c"]["type"] == "counter"
        assert parsed["acfd_h"]["type"] == "histogram"

    def test_help_survives_reregistration(self):
        reg = MetricsRegistry()
        reg.counter("c")  # first touch without help
        reg.counter("c", help="late help").inc()
        assert "# HELP acfd_c late help" in reg.expose_text()

    def test_no_help_no_help_line(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        assert "# HELP" not in reg.expose_text()


class TestEscaping:
    def test_help_escapes_backslash_and_newline(self):
        assert prom_escape_help("a\\b\nc") == "a\\\\b\\nc"

    def test_label_escapes_quote_too(self):
        assert prom_escape_label('say "hi"\\now\n') == \
            'say \\"hi\\"\\\\now\\n'

    def test_hostile_help_round_trips(self):
        hostile = 'path C:\\tmp\nsecond "line"'
        reg = MetricsRegistry()
        reg.counter("evil", help=hostile).inc()
        text = reg.expose_text()
        # the exposition itself stays one-line-per-entry
        assert all(l.count("# HELP") <= 1 for l in text.splitlines())
        parsed = parse_exposition(text)
        assert parsed["acfd_evil"]["help"] == hostile


class TestRoundTrip:
    def test_values_round_trip_through_the_text_format(self):
        reg = MetricsRegistry()
        reg.counter("loops.scanned").inc(41)
        reg.gauge("halo.width").set(2.0)
        h = reg.histogram("recv.wait_s")
        for v in (0.1, 0.2, 0.4, 1.6, 0.0):
            h.observe(v)
        parsed = parse_exposition(reg.expose_text())
        assert parsed["acfd_loops_scanned"]["samples"] == [({}, 41.0)]
        assert parsed["acfd_halo_width"]["samples"] == [({}, 2.0)]
        count = dict(
            (labels.get("le"), v)
            for labels, v in parsed["acfd_recv_wait_s_bucket"]["samples"])
        assert count["+Inf"] == 5.0
        assert count["0"] == 1.0  # the underflow (v <= 0) bucket
        assert parsed["acfd_recv_wait_s_count"]["samples"] == [({}, 5.0)]
        assert parsed["acfd_recv_wait_s_sum"]["samples"][0][1] == \
            pytest.approx(2.3)
        # cumulative buckets are monotone in le order
        numeric = sorted((float(le), v) for le, v in count.items()
                         if le not in ("+Inf",))
        values = [v for _, v in numeric]
        assert values == sorted(values)

    def test_health_exposition_parses_with_labels(self):
        from repro.obs.health import Telemetry, health_exposition
        tele = Telemetry(2)
        tele.rank_view(1).start(0)
        parsed = parse_exposition(health_exposition(tele))
        samples = dict((labels["rank"], v) for labels, v in
                       parsed["acfd_health_state"]["samples"])
        assert samples == {"0": 0.0, "1": 1.0}
        assert "run-state code" in parsed["acfd_health_state"]["help"]
        tele.close()
