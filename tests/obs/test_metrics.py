"""Histogram bucketing/quantiles and the Prometheus text exposition."""

import math
import re

import pytest

from repro.obs import Histogram, MetricsRegistry


class TestHistogramBuckets:
    def test_underflow_not_aliased_with_subunit(self):
        """Regression: v <= 0 and v in (0, 1] must land in different
        buckets — the seed merged zero-duration events with sub-unit
        ones in bucket 0."""
        h = Histogram("h")
        h.observe(0.0)
        h.observe(0.7)
        snap = h.snapshot()
        assert snap["underflow"] == 1
        assert snap["buckets"] == {0: 1}

    def test_negative_values_underflow(self):
        h = Histogram("h")
        h.observe(-3.0)
        snap = h.snapshot()
        assert snap["underflow"] == 1
        assert snap["buckets"] == {}

    def test_subunit_values_keep_resolution(self):
        """Sub-unit observations spread over negative bucket indices
        instead of collapsing into bucket 0."""
        h = Histogram("h")
        h.observe(0.8)     # (0.5, 1]       -> bucket 0
        h.observe(0.3)     # (0.25, 0.5]    -> bucket -1
        h.observe(0.001)   # (2^-10, 2^-9]  -> bucket -9
        assert h.snapshot()["buckets"] == {-9: 1, -1: 1, 0: 1}

    def test_powers_of_two_are_bucket_upper_bounds(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        assert h.snapshot()["buckets"] == {0: 1, 1: 1, 2: 1}

    def test_no_underflow_key_when_all_positive(self):
        h = Histogram("h")
        h.observe(1.0)
        assert "underflow" not in h.snapshot()


class TestHistogramQuantiles:
    def test_quantiles_in_snapshot(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["p50"] <= snap["p90"] <= snap["p99"] <= snap["max"]
        assert snap["p50"] >= snap["min"]

    def test_single_bucket_interpolates_within_clipped_range(self):
        # 100 observations in (16, 32]: quantiles must stay in range
        h = Histogram("h")
        for i in range(100):
            h.observe(17.0 + 0.1 * i)
        assert 17.0 <= h.quantile(0.5) <= 26.9
        assert h.quantile(0.99) <= 26.9
        assert h.quantile(1.0) == pytest.approx(26.9)

    def test_quantile_spans_buckets(self):
        h = Histogram("h")
        for _ in range(90):
            h.observe(1.0)    # bucket 0
        for _ in range(10):
            h.observe(100.0)  # bucket 7
        assert h.quantile(0.5) <= 1.0
        assert h.quantile(0.95) > 64.0

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.quantile(0.5) == 0.0
        assert h.snapshot() == {"count": 0, "sum": 0.0}

    def test_bad_q(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(2.0)


def parse_prometheus(text: str) -> dict:
    """Minimal parser for the exposition format (the round-trip half)."""
    metrics: dict = {}
    types: dict = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split()
            types[name] = kind
            continue
        assert not line.startswith("#")
        m = re.match(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
                     r'(?:\{le="([^"]+)"\})? (.+)$', line)
        assert m, f"unparseable line: {line!r}"
        name, le, value = m.groups()
        if le is None:
            metrics[name] = float(value)
        else:
            metrics.setdefault(name, {})[le] = float(value)
    return {"values": metrics, "types": types}


class TestExposition:
    def make_registry(self):
        reg = MetricsRegistry()
        reg.counter("compile.loops_scanned").inc(12)
        reg.gauge("halo.width").set(2.5)
        h = reg.histogram("bench.sample_s")
        for v in (0.0, 0.7, 1.5, 3.0):
            h.observe(v)
        return reg

    def test_round_trip(self):
        reg = self.make_registry()
        parsed = parse_prometheus(reg.expose_text())
        values, types = parsed["values"], parsed["types"]
        assert types["acfd_compile_loops_scanned"] == "counter"
        assert values["acfd_compile_loops_scanned"] == 12
        assert types["acfd_halo_width"] == "gauge"
        assert values["acfd_halo_width"] == 2.5
        assert types["acfd_bench_sample_s"] == "histogram"
        assert values["acfd_bench_sample_s_count"] == 4
        assert values["acfd_bench_sample_s_sum"] == pytest.approx(5.2)

    def test_histogram_buckets_cumulative(self):
        parsed = parse_prometheus(self.make_registry().expose_text())
        buckets = parsed["values"]["acfd_bench_sample_s_bucket"]
        # underflow (v<=0) -> le="0"; 0.7 -> le=1; 1.5 -> le=2; 3.0 -> le=4
        assert buckets["0"] == 1
        assert buckets["1.0"] == 2
        assert buckets["2.0"] == 3
        assert buckets["4.0"] == 4
        assert buckets["+Inf"] == 4
        # cumulative counts are monotone
        finite = [buckets[k] for k in buckets if k != "+Inf"]
        assert finite == sorted(finite)

    def test_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("weird.name-with:chars").inc()
        text = reg.expose_text()
        assert "acfd_weird_name_with_chars 1" in text

    def test_empty_registry(self):
        assert MetricsRegistry().expose_text() == ""

    def test_math_consistency_with_snapshot(self):
        reg = self.make_registry()
        snap = reg.snapshot()["bench.sample_s"]
        parsed = parse_prometheus(reg.expose_text())
        assert parsed["values"]["acfd_bench_sample_s_count"] \
            == snap["count"]
        assert math.isclose(parsed["values"]["acfd_bench_sample_s_sum"],
                            snap["sum"])
