"""Health board, rank telemetry, alerts, live rendering, /metrics."""

import urllib.request

import numpy as np
import pytest

from repro.obs.health import (
    HealthBoard,
    Telemetry,
    health_alerts,
    health_exposition,
    render_health_table,
    serve_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.runtime import spmd_run


class TestHealthBoard:
    def test_fresh_rows_decode_to_init(self):
        board = HealthBoard(2)
        s = board.sample(0)
        assert s.state == "init"
        assert s.frame is None
        assert s.ckpt_frame is None
        assert s.beat == 0

    def test_rank_telemetry_writes_show_in_samples(self):
        tele = Telemetry(2)
        view = tele.rank_view(1)
        view.start(epoch_ns=0)
        view.frame(4)
        view.sent(0, 256, tag=9)
        view.recvd(0, 128, tag=9, waited=0.01)
        view.checkpoint(4)
        s = tele.samples()[1]
        assert s.state == "compute"
        assert s.frame == 4
        assert s.ckpt_frame == 4
        assert s.sent_bytes == 256 and s.sent_msgs == 1
        assert s.recv_bytes == 128 and s.recv_msgs == 1
        tele.close()

    def test_enter_returns_previous_state(self):
        tele = Telemetry(1)
        view = tele.rank_view(0)
        view.start(epoch_ns=0)
        prev = view.enter(2)  # blocked
        assert prev == 1  # was compute
        assert tele.samples()[0].state == "blocked"
        view.enter(prev)
        assert tele.samples()[0].state == "compute"
        tele.close()

    def test_finish_marks_done_or_failed(self):
        tele = Telemetry(2)
        tele.rank_view(0).finish(True)
        tele.rank_view(1).finish(False)
        states = [s.state for s in tele.samples()]
        assert states == ["done", "failed"]
        assert tele.done()
        tele.close()

    def test_begin_resets_between_attempts(self):
        tele = Telemetry(1)
        view = tele.rank_view(0)
        view.start(0)
        view.frame(9)
        view.sent(0, 100, 0)
        tele.begin()
        s = tele.samples()[0]
        assert s.frame is None and s.sent_bytes == 0
        assert tele.tails() == {0: []}
        tele.close()


class TestSharedTelemetry:
    def test_spec_attach_round_trip(self):
        tele = Telemetry(2, shared=True)
        try:
            spec = tele.spec()
            view = Telemetry.attach(spec, rank=1)
            view.start(epoch_ns=0)
            view.frame(3)
            view.release()
            assert tele.samples()[1].frame == 3
            world = Telemetry.attach_world(spec)
            assert world.samples()[1].frame == 3
            world.close()
        finally:
            tele.close()

    def test_unshared_spec_is_an_error(self):
        tele = Telemetry(1)
        with pytest.raises(ValueError):
            tele.spec()
        tele.close()


class TestAlerts:
    def _sample(self, rank, state="compute", frame=5, age_s=0.0,
                depth=0):
        from repro.obs.health import HealthSample
        return HealthSample(rank=rank, beat=1, state=state, frame=frame,
                            mailbox_depth=depth, pool_outstanding=0,
                            ckpt_frame=None, sent_bytes=0, recv_bytes=0,
                            sent_msgs=0, recv_msgs=0, t_ns=0,
                            age_s=age_s)

    def test_straggler_flagged_against_frontier(self):
        samples = [self._sample(0, frame=10), self._sample(1, frame=6)]
        alerts = health_alerts(samples, lag=2)
        assert len(alerts) == 1
        assert "rank 1" in alerts[0] and "straggler" in alerts[0]

    def test_blocked_stall_flagged(self):
        samples = [self._sample(0, state="blocked", age_s=5.0, depth=3)]
        alerts = health_alerts(samples, stall_s=1.0)
        assert "blocked" in alerts[0] and "depth 3" in alerts[0]

    def test_failed_rank_flagged(self):
        alerts = health_alerts([self._sample(0, state="failed")])
        assert "FAILED" in alerts[0]

    def test_quiet_world_has_no_alerts(self):
        samples = [self._sample(0, frame=5), self._sample(1, frame=5)]
        assert health_alerts(samples) == []

    def test_table_renders_rows_and_alerts(self):
        samples = [self._sample(0, frame=5),
                   self._sample(1, state="failed", frame=3)]
        text = render_health_table(samples)
        assert "rank" in text.splitlines()[0]
        assert "failed" in text
        assert "! rank 1: FAILED" in text


class TestRuntimeIntegration:
    def test_thread_world_publishes_heartbeats_and_tails(self):
        payload = np.zeros(16, dtype=np.float64)

        def body(comm):
            if comm.rank == 0:
                comm.send(1, payload, tag=3)
                comm.recv(source=1, tag=4)
            else:
                comm.recv(source=0, tag=3)
                comm.send(0, payload, tag=4)
            comm.barrier()

        tele = Telemetry(2)
        spmd_run(2, body, telemetry=tele)
        s0, s1 = tele.samples()
        assert s0.state == "done" and s1.state == "done"
        assert s0.sent_bytes == payload.nbytes
        assert s0.recv_bytes == payload.nbytes
        kinds0 = [e.kind for e in tele.tails()[0]]
        assert "send" in kinds0 and "recv" in kinds0
        assert "barrier" in kinds0
        tele.close()


class TestMetricsServer:
    def test_http_exposition_includes_registry_and_health(self):
        registry = MetricsRegistry()
        registry.counter("demo.count", help="a demo counter").inc(3)
        tele = Telemetry(2)
        tele.rank_view(0).start(0)
        server = serve_metrics(registry, port=0, telemetry=tele)
        try:
            port = server.server_address[1]
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=5) as rsp:
                text = rsp.read().decode()
            assert "acfd_demo_count 3" in text
            assert "# HELP acfd_demo_count a demo counter" in text
            assert 'acfd_health_state{rank="0"} 1' in text
            assert 'acfd_health_state{rank="1"} 0' in text
        finally:
            server.shutdown()
            tele.close()

    def test_health_exposition_has_help_and_type_lines(self):
        tele = Telemetry(1)
        text = health_exposition(tele)
        assert "# HELP acfd_health_beat" in text
        assert "# TYPE acfd_health_beat gauge" in text
        tele.close()
