"""Timeline frames()/rollup() on traces a crash left incomplete.

A rank killed mid-run never emits its ``rank`` envelope event and stops
emitting frame-delimiting exchanges; the timeline must degrade to
clipped windows instead of raising or inventing time.
"""

import pytest

from repro.obs.timeline import Timeline
from repro.runtime.trace import Trace, TraceEvent


def _ev(rank, kind, t0, t1, tag=None, peer=None):
    return TraceEvent(rank, kind, peer, 0, tag, t0=t0, t1=t1)


def _crashed_trace() -> Trace:
    """Rank 0 ran 10 s (3 frames); rank 1 died at t=4 mid-frame 2.

    Rank 1 has no ``rank`` envelope (the crash skipped its epilogue)
    and fewer exchange marks than rank 0.
    """
    tr = Trace()
    tr.record(_ev(0, "rank", 0.0, 10.0))
    for t in (1.0, 4.0, 7.0):  # frame-delimiting exchange, sync id 5
        tr.record(_ev(0, "exchange", t, t + 0.5, tag=5))
    tr.record(_ev(0, "recv", 8.0, 10.0, peer=1))  # waiting on the corpse
    tr.record(_ev(1, "exchange", 1.0, 1.5, tag=5))
    tr.record(_ev(1, "recv", 2.0, 3.0, peer=0))
    tr.record(_ev(1, "halo_pack", 3.5, 4.0))
    return tr


class TestCrashedRankWindows:
    def test_missing_rank_envelope_clips_to_observed_events(self):
        tl = Timeline.from_trace(_crashed_trace())
        assert tl.rank_window(0) == (0.0, 10.0)
        # rank 1's window is its first event start to last event end
        assert tl.rank_window(1) == (1.0, 4.0)

    def test_rollup_books_only_the_clipped_window(self):
        roll = Timeline.from_trace(_crashed_trace()).rollup()
        r1 = roll.ranks[1]
        assert r1.total == pytest.approx(3.0)
        assert r1.blocked == pytest.approx(1.0)
        assert r1.halo == pytest.approx(0.5)  # exchange is an envelope
        # compute never goes negative on a clipped window
        assert r1.compute >= 0.0

    def test_rank_with_no_events_contributes_zero(self):
        tr = _crashed_trace()
        # a rank id only mentioned as a peer -> empty window, zero rows
        tr.record(_ev(2, "rank", 0.0, 0.0))
        roll = Timeline.from_trace(tr).rollup()
        assert roll.ranks[2].total == 0.0
        assert roll.ranks[2].compute == 0.0


class TestCrashedRankFrames:
    def test_reference_rank_frames_survive_peer_crash(self):
        tl = Timeline.from_trace(_crashed_trace())
        frames = tl.frames(ref_rank=0)
        assert len(frames) == 3
        assert frames[0][0] == pytest.approx(0.0)
        assert frames[-1][1] == pytest.approx(10.0)

    def test_crashed_reference_rank_collapses_to_one_frame(self):
        # rank 1 saw its delimiting exchange only once before dying
        tl = Timeline.from_trace(_crashed_trace())
        frames = tl.frames(ref_rank=1)
        assert frames == [tl.rank_window(1)]

    def test_no_frame_markers_means_whole_window(self):
        tr = Trace()
        tr.record(_ev(0, "rank", 0.0, 5.0))
        tr.record(_ev(0, "recv", 1.0, 2.0, peer=1))
        tl = Timeline.from_trace(tr)
        assert tl.frames() == [(0.0, 5.0)]

    def test_empty_trace_has_no_frames(self):
        tl = Timeline.from_trace(Trace())
        assert tl.frames() == []
        assert tl.rollup().ranks == []

    def test_per_frame_rollups_on_crashed_trace_partition_time(self):
        tl = Timeline.from_trace(_crashed_trace())
        per = tl.per_frame()
        assert len(per) == 3
        total0 = sum(r.ranks[0].total for r in per)
        assert total0 == pytest.approx(10.0)


class TestTopCapping:
    def test_table_top_keeps_worst_blocked_ranks(self):
        tr = Trace()
        for rank, blocked in ((0, 1.0), (1, 3.0), (2, 2.0)):
            tr.record(_ev(rank, "rank", 0.0, 10.0))
            tr.record(_ev(rank, "recv", 0.0, blocked, peer=0))
        roll = Timeline.from_trace(tr).rollup()
        worst = roll.worst_ranks(2)
        assert [r.rank for r in worst] == [1, 2]
        text = roll.table(top=2)
        lines = text.splitlines()
        assert any("2 more" not in l and l.startswith("   1") for l in lines)
        assert "1 more ranks elided (top 2 by blocked time)" in text
        # the summary still reflects every rank
        assert f"critical-path rank {roll.critical_path_rank}" in text

    def test_top_larger_than_world_shows_everything(self):
        tr = Trace()
        tr.record(_ev(0, "rank", 0.0, 1.0))
        roll = Timeline.from_trace(tr).rollup()
        assert roll.table(top=10) == roll.table()
