"""Spans, the active-profiler plumbing, and the metrics registry."""

import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Profiler,
    activate,
    counter,
    current,
    span,
)


class TestProfiler:
    def test_span_records_interval(self):
        prof = Profiler()
        with prof.span("work", cat="compile") as sp:
            sp.args["items"] = 3
        spans = prof.spans()
        assert len(spans) == 1
        assert spans[0].name == "work"
        assert spans[0].cat == "compile"
        assert spans[0].t1 >= spans[0].t0 >= 0.0
        assert spans[0].args == {"items": 3}

    def test_span_recorded_on_exception(self):
        prof = Profiler()
        with pytest.raises(ValueError):
            with prof.span("doomed"):
                raise ValueError("boom")
        assert [s.name for s in prof.spans()] == ["doomed"]
        assert prof.spans()[0].t1 >= prof.spans()[0].t0

    def test_total_filters_by_cat(self):
        prof = Profiler()
        with prof.span("a", cat="compile"):
            pass
        with prof.span("b", cat="execute"):
            pass
        assert prof.total("compile") <= prof.total()
        assert prof.total("nothing") == 0.0

    def test_phase_table_lists_each_span(self):
        prof = Profiler()
        with prof.span("lex", cat="compile") as sp:
            sp.args["lines"] = 7
        table = prof.phase_table("compile")
        assert "lex" in table
        assert "lines=7" in table
        assert "total" in table

    def test_concurrent_adds_are_lossless(self):
        prof = Profiler()

        def worker():
            for _ in range(200):
                with prof.span("w"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(prof.spans()) == 8 * 200


class TestActiveProfiler:
    def test_no_active_profiler_is_a_noop(self):
        assert current() is None
        with span("orphan") as sp:
            sp.args["x"] = 1  # must not raise
        counter("orphan.count").inc()  # null sink

    def test_activate_routes_spans(self):
        prof = Profiler()
        with activate(prof):
            assert current() is prof
            with span("phase-1", cat="compile"):
                pass
            counter("c").inc(5)
        assert current() is None
        assert [s.name for s in prof.spans()] == ["phase-1"]
        assert prof.metrics.snapshot()["c"] == 5

    def test_threads_do_not_inherit_activation(self):
        prof = Profiler()
        seen = []

        def worker():
            seen.append(current())

        with activate(prof):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen == [None]

    def test_nested_activation_restores_outer(self):
        outer, inner = Profiler("outer"), Profiler("inner")
        with activate(outer):
            with activate(inner):
                with span("deep"):
                    pass
            assert current() is outer
        assert [s.name for s in inner.spans()] == ["deep"]
        assert outer.spans() == []


class TestMetrics:
    def test_counter(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_set_and_running_max(self):
        g = Gauge("g")
        g.set(1.0)
        assert g.value == 1.0
        g.max(3.0)
        g.max(2.0)
        assert g.value == 3.0

    def test_histogram_stats(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == 7.0
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_registry_snapshot_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc(2)
        assert list(reg.snapshot()) == ["a", "b"]
