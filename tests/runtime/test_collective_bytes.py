"""Bytes-on-the-wire accounting for collectives, hand-checked at P = 3.

Convention under test: every rank records exactly one trace event per
collective, and its ``nbytes`` equals the payload bytes *that rank* put
on or took off the wire during the collective (sent + received).  The
pre-fix runtime violated this everywhere that mattered — bcast receivers
recorded 0, reduce leaves recorded bytes they never received, scatter
recorded 0 on every rank — so these are seed-failing regressions.

With the binomial tree at P = 3 and root 0, both bcast and reduce put
two messages on the wire, each touching the root: the root's event
counts both payloads, each leaf counts its own.
"""

import numpy as np

from repro.runtime.world import spmd_run


def _bytes_by_rank(trace, kind: str) -> dict[int, int]:
    out: dict[int, int] = {}
    for e in trace.snapshot():
        if e.kind == kind:
            out[e.rank] = out.get(e.rank, 0) + e.nbytes
    return out


def _events_per_rank(trace, kind: str) -> dict[int, int]:
    out: dict[int, int] = {}
    for e in trace.snapshot():
        if e.kind == kind:
            out[e.rank] = out.get(e.rank, 0) + 1
    return out


class TestBcastBytes:
    def test_receivers_record_received_bytes(self):
        # Seed bug: non-root ranks passed their local input (None) to the
        # recorder and logged nbytes=0 for an 80-byte receive.
        def body(comm):
            payload = np.arange(10, dtype=np.float64) \
                if comm.rank == 0 else None
            return comm.bcast(payload, root=0)

        w = spmd_run(3, body, timeout=10.0)
        assert all(r.tobytes() == np.arange(10.0).tobytes()
                   for r in w.results)
        # root relays to both leaves (2 x 80 out); each leaf takes 80 in
        assert _bytes_by_rank(w.trace, "bcast") == {0: 160, 1: 80, 2: 80}
        assert _events_per_rank(w.trace, "bcast") == {0: 1, 1: 1, 2: 1}

    def test_nonzero_root(self):
        def body(comm):
            return comm.bcast(3.5 if comm.rank == 1 else None, root=1)

        w = spmd_run(3, body, timeout=10.0)
        assert all(r == 3.5 for r in w.results)
        assert _bytes_by_rank(w.trace, "bcast") == {1: 16, 2: 8, 0: 8}

    def test_tree_totals_count_each_hop_twice(self):
        # P-1 messages of 8 bytes; each hop counted at both endpoints.
        for size in (2, 3, 4, 5, 8):
            def body(comm):
                return comm.bcast(1.0 if comm.rank == 0 else None)

            w = spmd_run(size, body, timeout=10.0)
            per_rank = _bytes_by_rank(w.trace, "bcast")
            assert sum(per_rank.values()) == 2 * (size - 1) * 8
            # binomial fan-out: the root sends one message per round
            rounds = len([m for m in (1, 2, 4, 8, 16) if m < size])
            assert per_rank[0] == 8 * rounds


class TestReduceBytes:
    def test_leaves_record_sent_root_records_received(self):
        # Seed bug: every rank recorded _payload_bytes(value) — the root
        # logged 8 for the 16 bytes it actually received.
        def body(comm):
            return comm.reduce(float(comm.rank + 1), "sum", root=0)

        w = spmd_run(3, body, timeout=10.0)
        assert w.results[0] == 6.0
        assert w.results[1] is None and w.results[2] is None
        assert _bytes_by_rank(w.trace, "reduce") == {0: 16, 1: 8, 2: 8}

    def test_allreduce_counts_both_phases(self):
        def body(comm):
            return comm.allreduce(1.0, "sum")

        w = spmd_run(3, body, timeout=10.0)
        assert all(r == 3.0 for r in w.results)
        # up phase {0:16, 1:8, 2:8} + down phase {0:16, 1:8, 2:8}
        assert _bytes_by_rank(w.trace, "allreduce") == {0: 32, 1: 16, 2: 16}
        assert _events_per_rank(w.trace, "allreduce") == {0: 1, 1: 1, 2: 1}


class TestGatherScatterBytes:
    def test_gather_unequal_payloads(self):
        def body(comm):
            return comm.gather(np.ones(comm.rank + 1), root=0)

        w = spmd_run(3, body, timeout=10.0)
        assert [len(a) for a in w.results[0]] == [1, 2, 3]
        # root receives 16 + 24; each sender counts its own payload
        assert _bytes_by_rank(w.trace, "gather") == {0: 40, 1: 16, 2: 24}

    def test_scatter_unequal_payloads(self):
        # Seed bug: scatter recorded nbytes=0 on every rank.
        def body(comm):
            values = None
            if comm.rank == 0:
                values = [np.zeros(1), np.zeros(2), np.zeros(3)]
            return comm.scatter(values, root=0)

        w = spmd_run(3, body, timeout=10.0)
        assert [len(r) for r in w.results] == [1, 2, 3]
        assert _bytes_by_rank(w.trace, "scatter") == {0: 40, 1: 16, 2: 24}

    def test_allgather_counts_both_phases(self):
        def body(comm):
            return comm.allgather(float(comm.rank))

        w = spmd_run(3, body, timeout=10.0)
        assert all(r == [0.0, 1.0, 2.0] for r in w.results)
        # gather up {0:16, 1:8, 2:8}; then the 24-byte list is broadcast
        # down the tree {0:48, 1:24, 2:24}
        assert _bytes_by_rank(w.trace, "allgather") == {0: 64, 1: 32, 2: 32}


class TestCommStats:
    def test_collective_bytes_aggregate(self):
        def body(comm):
            comm.bcast(1.0 if comm.rank == 0 else None)
            return None

        w = spmd_run(3, body, timeout=10.0)
        stats = w.trace.comm_stats()
        assert stats["collective_bytes"] == 32
        # collectives put messages directly: no point-to-point sends
        assert stats["sends"] == 0 and stats["bytes_sent"] == 0
