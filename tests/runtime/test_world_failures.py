"""World teardown discipline: the launcher must never hang on a stuck
rank, and pooled halo buffers must not leak across worlds."""

import threading
import time

import numpy as np
import pytest

from repro.errors import RuntimeCommError
from repro.runtime import BufferPool, spmd_run
from repro.runtime.halo import shared_pool


class TestWatchdog:
    def test_stuck_compute_rank_is_named_not_joined_forever(self):
        # rank 1 spins in compute-only code and never observes the
        # failure; before the watchdog join discipline this hung the
        # launcher (and the whole process) indefinitely
        release = threading.Event()

        def body(comm):
            if comm.rank == 0:
                raise ValueError("boom")
            while not release.is_set():
                time.sleep(0.005)

        try:
            with pytest.raises(RuntimeCommError) as exc_info:
                spmd_run(2, body, timeout=1.0)
        finally:
            release.set()
        msg = str(exc_info.value)
        assert "rank(s) 1" in msg
        assert "did not stop" in msg
        # the root cause still gets top billing
        assert "rank 0" in msg and "ValueError: boom" in msg

    def test_clean_world_does_not_wait_for_the_watchdog(self):
        t0 = time.monotonic()
        w = spmd_run(2, lambda comm: comm.rank, timeout=60.0)
        assert w.results == [0, 1]
        assert time.monotonic() - t0 < 30.0

    def test_fast_failure_propagates_before_the_deadline(self):
        def body(comm):
            if comm.rank == 0:
                raise RuntimeError("quick")
            comm.barrier()

        t0 = time.monotonic()
        with pytest.raises(RuntimeCommError, match="quick"):
            spmd_run(2, body, timeout=60.0)
        # both ranks unwound promptly; no 60 s join
        assert time.monotonic() - t0 < 30.0


class TestRankEnvelope:
    def test_crashed_rank_still_gets_an_execution_window(self):
        # the "rank" envelope used to be recorded only on the success
        # path, so a crashed rank had no execution window and the
        # timeline attributed zero compute to it — `acfd profile` on a
        # chaos run misreported the crashed rank
        def body(comm):
            if comm.rank == 1:
                time.sleep(0.02)
                raise RuntimeError("injected death")
            return comm.rank

        trace = None
        with pytest.raises(RuntimeCommError, match="injected death"):
            from repro.runtime.trace import Trace
            trace = Trace()
            spmd_run(2, body, timeout=5.0, trace=trace)
        envelopes = {e.rank: e for e in trace.snapshot()
                     if e.kind == "rank"}
        assert set(envelopes) == {0, 1}, \
            "every rank gets an envelope, crashed ones included"
        crashed = envelopes[1]
        # t1 is the failure time: the window covers the work done
        # before the death (here, at least the 20 ms sleep)
        assert crashed.t1 >= crashed.t0
        assert crashed.dur >= 0.02


class TestPoolDrain:
    def test_drain_frees_pooled_and_counts_leaks(self):
        pool = BufferPool()
        a = pool.acquire((8,), np.float64)
        b = pool.acquire((8,), np.float64)
        pool.release(a)
        assert pool.drain() == {"pooled_freed": 1, "leaked": 1}
        stats = pool.stats()
        assert stats["pooled"] == 0
        assert stats["outstanding"] == 0
        assert stats["leaks"] == 1
        assert stats["drains"] == 1
        # drained buffers are really gone: next acquire is a fresh miss
        c = pool.acquire((8,), np.float64)
        assert c is not a and c is not b

    def test_world_teardown_drains_the_shared_pool(self):
        pool = shared_pool()
        before = pool.stats()

        def body(comm):
            pool.acquire((16,), np.float64)  # receiver never releases
            return True

        w = spmd_run(2, body)
        assert all(w.results)
        after = pool.stats()
        assert after["drains"] >= before["drains"] + 1
        assert after["outstanding"] == 0
        assert after["pooled"] == 0
        assert after["leaks"] >= before["leaks"] + 2

    def test_failed_world_still_drains(self):
        pool = shared_pool()
        before = pool.stats()["drains"]

        def body(comm):
            pool.acquire((4,), np.float64)
            raise RuntimeError("die")

        with pytest.raises(RuntimeCommError):
            spmd_run(2, body, timeout=5.0)
        assert pool.stats()["drains"] >= before + 1
        assert pool.stats()["outstanding"] == 0
