"""Nonblocking halo exchange (begin/finish) and its satellite guards.

The overlap path must ship exactly what the blocking path ships: faces
are packed at ``begin()`` (same program point as a blocking exchange),
so owned cells mutated while the messages fly must not leak into any
neighbor's ghosts, and ghost layers must stay untouched until
``finish()`` unpacks them (the structural double buffer).
"""

import numpy as np
import pytest

from repro.errors import RuntimeCommError
from repro.interp.values import OffsetArray
from repro.partition.grid import GridGeometry
from repro.partition.halo import GhostSpec, ghost_bounds
from repro.partition.partitioner import Partition
from repro.runtime import BufferPool, CartComm, HaloExchanger, HaloSpec, spmd_run
from repro.runtime.halo import MAX_HALO_POINTS, halo_tag


def global_field(shape):
    arr = OffsetArray(tuple(shape))
    for idx in np.ndindex(*shape):
        arr.data[idx] = sum((c + 1) * 100 ** d for d, c in enumerate(idx))
    return arr


def overlapped_run(grid_shape, dims, dist, mutate_between=False):
    """begin/finish exchange; every ghost must match the global field."""
    grid = GridGeometry(grid_shape)
    part = Partition(grid, dims)
    ndims = len(grid_shape)
    reference = global_field(grid_shape)
    ghosts = GhostSpec(tuple(dist for _ in range(ndims)))
    dim_map = tuple(range(ndims))

    def body(comm):
        cart = CartComm(comm, dims)
        sub = part.subgrid(comm.rank)
        bounds = ghost_bounds(part, comm.rank, dim_map,
                              [(1, n) for n in grid_shape], ghosts)
        local = OffsetArray.from_bounds(bounds, name="v")
        local.set_section(list(sub.owned),
                          reference.section(list(sub.owned)))
        spec = HaloSpec(local, dim_map, sub.owned,
                        tuple(dist for _ in range(ndims)))
        ex = HaloExchanger(cart, [spec])
        ex.begin()
        if mutate_between:
            # interior compute may rewrite owned cells while messages
            # fly; faces were packed at begin(), so neighbors must still
            # receive the pre-mutation values
            local.set_section(
                list(sub.owned),
                np.full_like(reference.section(list(sub.owned)), -7.0))
        ex.finish()
        got = local.section(local.bounds)
        want = reference.section(local.bounds)
        if mutate_between:
            # owned block was overwritten locally; only check ghosts
            owned_slices = tuple(
                slice(lo - b[0], hi - b[0] + 1)
                for (lo, hi), b in zip(sub.owned, local.bounds))
            mask = np.ones(got.shape, dtype=bool)
            mask[owned_slices] = False
            assert np.array_equal(got[mask], want[mask]), \
                f"rank {comm.rank}: ghosts saw post-begin mutations"
        else:
            assert np.array_equal(got, want), \
                f"rank {comm.rank} ghost mismatch"
        return True

    w = spmd_run(int(np.prod(dims)), body)
    assert all(w.results)
    return w


class TestBeginFinish:
    def test_1d_two_ranks(self):
        overlapped_run((12,), (2,), (1, 1))

    def test_1d_distance_two(self):
        overlapped_run((16,), (4,), (2, 2))

    def test_2d_one_cut_dim(self):
        overlapped_run((8, 8), (2, 1), (1, 1))

    def test_faces_packed_at_begin_not_finish(self):
        # the double-buffer contract: mutations between begin and finish
        # never reach the neighbors
        overlapped_run((12,), (2,), (1, 1), mutate_between=True)

    def test_trace_records_overlap_and_exchange(self):
        w = overlapped_run((12,), (2,), (1, 1))
        assert w.trace.count("overlap") == 2  # one per rank
        assert w.trace.count("exchange") == 2

    def test_double_begin_raises(self):
        def body(comm):
            cart = CartComm(comm, (2,))
            sub_owned = ((1, 6),) if comm.rank == 0 else ((7, 12),)
            a = OffsetArray.from_bounds(
                [(1, 7)] if comm.rank == 0 else [(6, 12)], name="v")
            spec = HaloSpec(a, (0,), sub_owned, ((1, 1),))
            ex = HaloExchanger(cart, [spec])
            ex.begin()
            if comm.rank == 0:
                ex.begin()  # second begin without finish
            ex.finish()

        with pytest.raises(RuntimeCommError, match="begun twice"):
            spmd_run(2, body, timeout=5.0)

    def test_finish_without_begin_raises(self):
        def body(comm):
            cart = CartComm(comm, (2,))
            sub_owned = ((1, 6),) if comm.rank == 0 else ((7, 12),)
            a = OffsetArray.from_bounds(
                [(1, 7)] if comm.rank == 0 else [(6, 12)], name="v")
            spec = HaloSpec(a, (0,), sub_owned, ((1, 1),))
            HaloExchanger(cart, [spec]).finish()

        with pytest.raises(RuntimeCommError, match="without begin"):
            spmd_run(2, body, timeout=5.0)


class TestTagSpaceGuard:
    """halo_tag must never stride into the pipeline tag space (1 << 17)."""

    def test_last_valid_point_stays_below_pipeline_base(self):
        tag = halo_tag(MAX_HALO_POINTS - 1, 2, 1)
        assert tag < (1 << 17)

    def test_point_id_at_limit_rejected(self):
        # the seed accepted this id and emitted tags >= 1 << 17, which a
        # pipeline transfer with pipe_id 0 would have consumed
        with pytest.raises(RuntimeCommError, match="pipeline tag space"):
            halo_tag(MAX_HALO_POINTS, 0, -1)

    def test_negative_point_id_rejected(self):
        with pytest.raises(RuntimeCommError):
            halo_tag(-1, 0, -1)

    def test_exchanger_rejects_oversized_point_id_at_construction(self):
        with pytest.raises(RuntimeCommError, match="tag space"):
            HaloExchanger(None, [], point_id=MAX_HALO_POINTS)

    def test_exchanger_accepts_max_valid_point_id(self):
        ex = HaloExchanger(None, [], point_id=MAX_HALO_POINTS - 1)
        assert ex.point_id == MAX_HALO_POINTS - 1


class TestBufferPoolAccounting:
    def test_cycling_past_max_per_key_balances(self):
        # the free list caps at max_per_key; turned-away buffers must
        # still decrement outstanding, so a long acquire/release cycle
        # ends balanced instead of accumulating phantom leaks
        pool = BufferPool(max_per_key=2)
        for _round in range(5):
            bufs = [pool.acquire((8,), np.float64) for _ in range(4)]
            for b in bufs:
                pool.release(b)
        stats = pool.stats()
        assert stats["outstanding"] == 0
        assert stats["pooled"] == 2  # capped, not 4
        assert pool.drain() == {"pooled_freed": 2, "leaked": 0}
        assert pool.stats()["leaks"] == 0

    def test_zero_size_buffers_never_counted_outstanding(self):
        # zero-width faces bypass pooling on release; acquire must skip
        # the counters symmetrically or drain() books a leak per frame
        pool = BufferPool()
        buf = pool.acquire((0,), np.float64)
        assert buf.size == 0
        pool.release(buf)
        assert pool.stats()["outstanding"] == 0
        assert pool.drain()["leaked"] == 0

    def test_mixed_zero_and_nonzero_balance(self):
        pool = BufferPool()
        a = pool.acquire((4,), np.float64)
        z = pool.acquire((0, 3), np.float64)
        assert pool.stats()["outstanding"] == 1
        pool.release(z)
        pool.release(a)
        assert pool.stats()["outstanding"] == 0
