"""Cartesian topology, world failure handling, and trace accounting."""

import pytest

from repro.errors import RuntimeCommError
from repro.runtime import CartComm, Trace, spmd_run
from repro.runtime.trace import TraceEvent


class TestCart:
    def test_coords_roundtrip(self):
        def body(comm):
            cart = CartComm(comm, (2, 3))
            assert cart.rank_of(cart.coords) == comm.rank
            return cart.coords

        w = spmd_run(6, body)
        assert w.results[0] == (0, 0)
        assert w.results[1] == (0, 1)
        assert w.results[3] == (1, 0)
        assert w.results[5] == (1, 2)

    def test_neighbors_non_periodic(self):
        def body(comm):
            cart = CartComm(comm, (3,))
            return cart.shift(0, 1)

        w = spmd_run(3, body)
        assert w.results == [(None, 1), (0, 2), (1, None)]

    def test_neighbors_list(self):
        def body(comm):
            cart = CartComm(comm, (2, 2))
            return sorted(cart.neighbors())

        w = spmd_run(4, body)
        # corner rank 0 has neighbors along both dims
        assert w.results[0] == [(0, 1, 2), (1, 1, 1)]

    def test_size_mismatch(self):
        def body(comm):
            CartComm(comm, (2, 2))

        with pytest.raises(RuntimeCommError):
            spmd_run(2, body)

    def test_bad_coords(self):
        def body(comm):
            cart = CartComm(comm, (2,))
            cart.rank_of((5,))

        with pytest.raises(RuntimeCommError):
            spmd_run(2, body)


class TestWorld:
    def test_results_in_rank_order(self):
        w = spmd_run(4, lambda comm: comm.rank * 2)
        assert w.results == [0, 2, 4, 6]

    def test_single_rank(self):
        w = spmd_run(1, lambda comm: comm.size)
        assert w.results == [1]

    def test_zero_size_rejected(self):
        with pytest.raises(RuntimeCommError):
            spmd_run(0, lambda comm: None)

    def test_exception_propagates_with_rank(self):
        def body(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(RuntimeCommError) as exc_info:
            spmd_run(3, body, timeout=2.0)
        assert "rank 2" in str(exc_info.value)
        assert "boom" in str(exc_info.value)

    def test_failure_wakes_blocked_receivers(self):
        def body(comm):
            if comm.rank == 0:
                raise RuntimeError("dead")
            comm.recv(0)  # would block forever without failure signal

        with pytest.raises(RuntimeCommError):
            spmd_run(2, body, timeout=30.0)


class TestTrace:
    def test_counts(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, b"xxxx")
            else:
                comm.recv(0)
            comm.barrier()
            comm.allreduce(1.0, "sum")

        w = spmd_run(2, body)
        t = w.trace
        assert t.count("send", rank=0) == 1
        assert t.count("recv", rank=1) == 1
        assert t.count("barrier") == 2
        assert t.count("allreduce") == 2

    def test_bytes_sent(self):
        import numpy as np

        def body(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(10))
            else:
                comm.recv(0)

        w = spmd_run(2, body)
        assert w.trace.bytes_sent(rank=0) == 80

    def test_sync_count(self):
        def body(comm):
            comm.barrier()
            comm.allreduce(1, "max")

        w = spmd_run(2, body)
        assert w.trace.sync_count(rank=0) == 2

    def test_sync_count_includes_gather_scatter_allgather(self):
        """Regression: gathers, scatters, and allgathers are Table-1
        synchronizations too — sync_count used to miss all three."""
        def body(comm):
            comm.gather(comm.rank, root=0)
            comm.scatter(list(range(comm.size)) if comm.rank == 0 else None,
                         root=0)
            comm.allgather(comm.rank)

        w = spmd_run(2, body)
        assert w.trace.sync_count(rank=0) == 3
        assert w.trace.sync_count() == 6

    def test_comm_stats_syncs_by_kind(self):
        def body(comm):
            comm.barrier()
            comm.gather(comm.rank, root=0)
            comm.allgather(comm.rank)

        w = spmd_run(2, body)
        stats = w.trace.comm_stats()
        assert stats["syncs_by_kind"] == {"barrier": 2, "gather": 2,
                                          "allgather": 2}
        assert stats["syncs"] == 6

    def test_allgather_traced_as_one_sync(self):
        """An allgather is one synchronization, not a gather + a bcast."""
        def body(comm):
            return comm.allgather(comm.rank)

        w = spmd_run(3, body)
        assert w.results == [[0, 1, 2]] * 3
        assert w.trace.count("allgather", rank=0) == 1
        assert w.trace.count("gather") == 0
        assert w.trace.count("bcast") == 0

    def test_span_timestamps_on_events(self):
        """Every traced operation carries a begin/end interval."""
        def body(comm):
            if comm.rank == 0:
                comm.send(1, [1.0] * 100)
            else:
                comm.recv(0)
            comm.barrier()

        w = spmd_run(2, body)
        for e in w.trace.snapshot():
            assert e.t1 >= e.t0 >= 0.0
        recv = [e for e in w.trace.snapshot() if e.kind == "recv"][0]
        assert recv.dur >= recv.wait_s >= 0.0

    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)

        def body(comm):
            comm.barrier()
            comm.allreduce(1, "sum")

        spmd_run(2, body, trace=trace)
        assert trace.events == []
        assert trace.comm_stats()["syncs"] == 0

    def test_external_trace_object(self):
        trace = Trace()
        spmd_run(2, lambda comm: comm.barrier(), trace=trace)
        assert trace.count("barrier") == 2

    def test_clear(self):
        trace = Trace()
        trace.record(TraceEvent(0, "send", 1, 8))
        trace.clear()
        assert trace.events == []

    def test_wait_time_recorded_for_blocked_recv(self):
        import time

        def body(comm):
            if comm.rank == 0:
                time.sleep(0.08)
                comm.send(1, 1)
                return None
            return comm.recv(0)

        w = spmd_run(2, body)
        assert w.trace.wait_time(rank=1) >= 0.05
        assert w.trace.wait_time(rank=0) < 0.05

    def test_saved_bytes_zero_for_plain_sends(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, [1, 2, 3])
            else:
                comm.recv(0)

        w = spmd_run(2, body)
        assert w.trace.saved_bytes() == 0

    def test_comm_stats_aggregates(self):
        import numpy as np

        def body(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(10))
            else:
                comm.recv(0)
            comm.barrier()

        w = spmd_run(2, body)
        stats = w.trace.comm_stats()
        assert stats["sends"] == 1
        assert stats["bytes_sent"] == 80
        assert stats["syncs"] == 2
        assert stats["wait_s"] >= 0.0
        assert stats["saved_bytes"] == 0
