"""Stress and failure-mode tests for the message-passing runtime.

Covers heavy out-of-order tagged traffic across 8 ranks, trace queries
racing active recording, and deliberately deadlocked programs that must be
diagnosed (with the wait-for cycle named) long before the wall-clock
watchdog would fire.
"""

import random
import threading
import time

import pytest

from repro.errors import RuntimeCommError, RuntimeDeadlockError
from repro.runtime import Trace, spmd_run


class TestOutOfOrderContention:
    def test_eight_ranks_all_to_all_shuffled_tags(self):
        # every rank sends one message per (peer, tag) in a rank-seeded
        # shuffled order and receives in an independently shuffled order;
        # indexed matching must pair them all up correctly
        SIZE, NTAGS = 8, 12

        def body(comm):
            tags = list(range(NTAGS))
            rng = random.Random(1234 + comm.rank)
            for peer in range(SIZE):
                if peer == comm.rank:
                    continue
                order = tags[:]
                rng.shuffle(order)
                for t in order:
                    comm.send(peer, (comm.rank, t), tag=t)
            pairs = [(p, t) for p in range(SIZE) if p != comm.rank
                     for t in tags]
            random.Random(999 - comm.rank).shuffle(pairs)
            for p, t in pairs:
                assert comm.recv(p, tag=t) == (p, t)
            return True

        w = spmd_run(SIZE, body, timeout=60.0)
        assert all(w.results)

    def test_wildcard_source_under_contention(self):
        def body(comm):
            if comm.rank == 0:
                seen = sorted(comm.recv(None, tag=5) for _ in range(7))
                assert seen == list(range(1, 8))
                return True
            comm.send(0, comm.rank, tag=5)
            return True

        w = spmd_run(8, body, timeout=30.0)
        assert all(w.results)

    def test_fifo_preserved_per_pair_under_ring_storm(self):
        SIZE, N = 8, 200

        def body(comm):
            nxt = (comm.rank + 1) % SIZE
            prev = (comm.rank - 1) % SIZE
            for i in range(N):
                comm.send(nxt, i, tag=i % 5)
            for i in range(N):
                assert comm.recv(prev, tag=i % 5) == i
            return True

        w = spmd_run(SIZE, body, timeout=60.0)
        assert all(w.results)


class TestConcurrentTraceAccess:
    def test_queries_race_recording(self):
        # query the shared trace from the launcher thread while 8 ranks
        # are recording a message storm; counts must be consistent
        # (monotone) and nothing may raise
        trace = Trace()
        stop = threading.Event()
        counts: list[int] = []
        errors: list[BaseException] = []

        def reader():
            try:
                while not stop.is_set():
                    counts.append(trace.count("send"))
                    trace.bytes_sent()
                    trace.sync_count()
                    trace.wait_time()
                    trace.comm_stats()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        t = threading.Thread(target=reader)
        t.start()
        SIZE, N = 8, 150

        def body(comm):
            nxt = (comm.rank + 1) % SIZE
            prev = (comm.rank - 1) % SIZE
            for i in range(N):
                comm.send(nxt, i, tag=0)
            for i in range(N):
                assert comm.recv(prev, tag=0) == i
            comm.barrier()
            return True

        try:
            w = spmd_run(SIZE, body, trace=trace, timeout=60.0)
        finally:
            stop.set()
            t.join()
        assert not errors
        assert all(w.results)
        assert counts == sorted(counts), "send count went backwards"
        assert trace.count("send") == SIZE * N
        assert trace.count("barrier") == SIZE

    def test_timeline_rollups_race_recording(self):
        # build timelines and roll-ups from the launcher thread while 8
        # ranks are recording; derived numbers must stay finite and
        # non-negative and nothing may raise
        trace = Trace()
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader():
            try:
                while not stop.is_set():
                    tl = trace.timeline()
                    roll = tl.rollup()
                    assert roll.load_imbalance >= 1.0
                    for b in roll.ranks:
                        assert b.total >= 0.0
                        assert b.blocked >= 0.0
                    tl.frames()
                    tl.per_frame()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        t = threading.Thread(target=reader)
        t.start()
        SIZE, N = 8, 100

        def body(comm):
            nxt = (comm.rank + 1) % SIZE
            prev = (comm.rank - 1) % SIZE
            for i in range(N):
                comm.send(nxt, i, tag=0)
                comm.recv(prev, tag=0)
                if i % 25 == 0:
                    comm.allreduce(i, "max")
            return True

        try:
            w = spmd_run(SIZE, body, trace=trace, timeout=60.0)
        finally:
            stop.set()
            t.join()
        assert not errors, errors[:1]
        assert all(w.results)
        # settled trace: every rank window covers its leaf events
        roll = trace.timeline().rollup()
        assert len(roll.ranks) == SIZE
        for b in roll.ranks:
            assert b.total >= b.blocked + b.send - 1e-9

    def test_rollup_queries_race_clear(self):
        # clear() while readers roll up: snapshots keep queries
        # self-consistent even as the event list vanishes underneath
        trace = Trace()
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader():
            try:
                while not stop.is_set():
                    roll = trace.timeline().rollup()
                    assert roll.comm_time >= 0.0
                    trace.comm_stats()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def clearer():
            while not stop.is_set():
                trace.clear()

        readers = [threading.Thread(target=reader) for _ in range(2)]
        wiper = threading.Thread(target=clearer)
        for t in (*readers, wiper):
            t.start()
        SIZE = 8

        def body(comm):
            nxt = (comm.rank + 1) % SIZE
            prev = (comm.rank - 1) % SIZE
            for i in range(60):
                comm.send(nxt, i, tag=0)
                comm.recv(prev, tag=0)
            comm.barrier()
            return True

        try:
            w = spmd_run(SIZE, body, trace=trace, timeout=60.0)
        finally:
            stop.set()
            for t in (*readers, wiper):
                t.join()
        assert not errors, errors[:1]
        assert all(w.results)


class TestDeadlockDetection:
    def test_two_rank_cycle_is_named(self):
        def body(comm):
            comm.recv(1 - comm.rank, tag=1)  # both wait: classic cycle

        t0 = time.perf_counter()
        with pytest.raises(RuntimeDeadlockError) as ei:
            spmd_run(2, body, timeout=30.0)
        elapsed = time.perf_counter() - t0
        assert elapsed < 5.0, \
            f"detector took {elapsed:.1f}s (watchdog would be 30s)"
        msg = str(ei.value)
        assert "wait-for cycle" in msg
        assert ("rank 0 -> rank 1 -> rank 0" in msg
                or "rank 1 -> rank 0 -> rank 1" in msg)
        assert "blocked in recv" in msg

    def test_three_rank_cycle_is_named(self):
        def body(comm):
            comm.recv((comm.rank + 1) % 3, tag=2)

        with pytest.raises(RuntimeDeadlockError) as ei:
            spmd_run(3, body, timeout=30.0)
        assert "rank 0 -> rank 1 -> rank 2 -> rank 0" in str(ei.value)

    def test_blocked_on_finished_rank(self):
        # not a cycle: rank 1 waits on a rank that already returned; the
        # snapshot must say so
        def body(comm):
            if comm.rank == 0:
                return "done"
            comm.recv(0, tag=3)

        with pytest.raises(RuntimeDeadlockError) as ei:
            spmd_run(2, body, timeout=30.0)
        msg = str(ei.value)
        assert "rank 0: finished" in msg
        assert "blocked in recv(source=0" in msg

    def test_mixed_recv_and_barrier_deadlock(self):
        # rank 0 waits for a message that never comes; rank 1 waits at a
        # barrier rank 0 will never reach
        def body(comm):
            if comm.rank == 0:
                comm.recv(1, tag=1)
            else:
                comm.barrier()

        t0 = time.perf_counter()
        with pytest.raises(RuntimeCommError) as ei:
            spmd_run(2, body, timeout=30.0)
        assert time.perf_counter() - t0 < 5.0
        assert "blocked" in str(ei.value)

    def test_clean_full_barrier_is_not_a_deadlock(self):
        # all ranks meeting at a barrier releases itself; the detector
        # must not trip on it even under repetition
        def body(comm):
            for _ in range(50):
                comm.barrier()
            return True

        w = spmd_run(4, body, timeout=30.0)
        assert all(w.results)

    def test_slow_sender_is_not_a_deadlock(self):
        # a long compute phase on one rank must not be mistaken for a
        # deadlock while the others block on its output
        def body(comm):
            if comm.rank == 0:
                time.sleep(0.6)  # > detector check interval
                for peer in range(1, 4):
                    comm.send(peer, "late", tag=4)
                return "sender"
            return comm.recv(0, tag=4)

        w = spmd_run(4, body, timeout=30.0)
        assert w.results[1:] == ["late"] * 3


class TestLatencySmoke:
    def test_pingpong_is_event_driven(self):
        # tier-1-safe smoke version of benchmarks/test_micro_runtime.py:
        # with condition-variable wakeups a round trip is tens of
        # microseconds; a 50 ms polling tick would fail this by orders of
        # magnitude even on a loaded CI machine
        N = 200

        def body(comm):
            peer = 1 - comm.rank
            comm.barrier()
            t0 = time.perf_counter()
            for i in range(N):
                if comm.rank == 0:
                    comm.send(peer, i, tag=0)
                    comm.recv(peer, tag=1)
                else:
                    comm.recv(peer, tag=0)
                    comm.send(peer, i, tag=1)
            return (time.perf_counter() - t0) / N

        w = spmd_run(2, body, timeout=30.0)
        per_rt = max(w.results)
        assert per_rt < 0.005, \
            f"{per_rt * 1e6:.0f} us/roundtrip — receives are not event-driven"
