"""Point-to-point and collective communication."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RuntimeCommError
from repro.runtime import spmd_run


class TestPointToPoint:
    def test_send_recv(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, {"x": 42})
                return None
            return comm.recv(0)

        w = spmd_run(2, body)
        assert w.results[1] == {"x": 42}

    def test_numpy_payload_copied(self):
        def body(comm):
            if comm.rank == 0:
                buf = np.ones(4)
                comm.send(1, buf)
                buf[...] = 99.0  # must not affect the message
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(0)

        w = spmd_run(2, body)
        assert np.array_equal(w.results[1], np.ones(4))

    def test_tag_matching(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, "a", tag=1)
                comm.send(1, "b", tag=2)
                return None
            second = comm.recv(0, tag=2)
            first = comm.recv(0, tag=1)
            return (first, second)

        w = spmd_run(2, body)
        assert w.results[1] == ("a", "b")

    def test_any_source(self):
        def body(comm):
            if comm.rank != 0:
                comm.send(0, comm.rank)
                return None
            got = {comm.recv(None), comm.recv(None)}
            return got

        w = spmd_run(3, body)
        assert w.results[0] == {1, 2}

    def test_fifo_per_source_tag(self):
        def body(comm):
            if comm.rank == 0:
                for k in range(5):
                    comm.send(1, k)
                return None
            return [comm.recv(0) for _ in range(5)]

        w = spmd_run(2, body)
        assert w.results[1] == list(range(5))

    def test_sendrecv(self):
        def body(comm):
            peer = 1 - comm.rank
            return comm.sendrecv(peer, comm.rank * 10, source=peer)

        w = spmd_run(2, body)
        assert w.results == [10, 0]

    def test_isend_irecv(self):
        def body(comm):
            if comm.rank == 0:
                req = comm.isend(1, "hello")
                req.wait()
                return None
            req = comm.irecv(0)
            return req.wait()

        w = spmd_run(2, body)
        assert w.results[1] == "hello"

    def test_probe(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag=9)
                comm.barrier()
                return None
            comm.barrier()
            assert comm.probe(0, 9)
            assert not comm.probe(0, 8)
            comm.recv(0, 9)
            return True

        spmd_run(2, body)

    def test_bad_rank(self):
        def body(comm):
            comm.send(5, 1)

        with pytest.raises(RuntimeCommError):
            spmd_run(2, body)

    def test_recv_timeout(self):
        def body(comm):
            if comm.rank == 1:
                comm.recv(0)  # never sent

        with pytest.raises(RuntimeCommError):
            spmd_run(2, body, timeout=0.3)


class TestCollectives:
    def test_barrier_all(self):
        order = []

        def body(comm):
            comm.barrier()
            order.append(comm.rank)
            comm.barrier()
            return len(order)

        w = spmd_run(3, body)
        assert all(r == 3 for r in w.results)

    def test_bcast(self):
        def body(comm):
            value = [1, 2, 3] if comm.rank == 0 else None
            return comm.bcast(value, root=0)

        w = spmd_run(4, body)
        assert all(r == [1, 2, 3] for r in w.results)

    def test_reduce_sum(self):
        def body(comm):
            return comm.reduce(comm.rank + 1, "sum", root=0)

        w = spmd_run(4, body)
        assert w.results[0] == 10
        assert w.results[1] is None

    def test_allreduce_ops(self):
        def body(comm):
            x = float(comm.rank + 1)
            return (comm.allreduce(x, "sum"), comm.allreduce(x, "max"),
                    comm.allreduce(x, "min"), comm.allreduce(x, "prod"))

        w = spmd_run(3, body)
        assert all(r == (6.0, 3.0, 1.0, 6.0) for r in w.results)

    def test_allreduce_numpy(self):
        def body(comm):
            return comm.allreduce(np.full(3, float(comm.rank)), "max")

        w = spmd_run(3, body)
        for r in w.results:
            assert np.array_equal(r, np.full(3, 2.0))

    def test_gather(self):
        def body(comm):
            return comm.gather(comm.rank ** 2, root=1)

        w = spmd_run(3, body)
        assert w.results[1] == [0, 1, 4]
        assert w.results[0] is None

    def test_allgather(self):
        def body(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        w = spmd_run(3, body)
        assert all(r == ["a", "b", "c"] for r in w.results)

    def test_scatter(self):
        def body(comm):
            values = [10, 20, 30] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        w = spmd_run(3, body)
        assert w.results == [10, 20, 30]

    def test_scatter_wrong_length(self):
        def body(comm):
            values = [1] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        with pytest.raises(RuntimeCommError):
            spmd_run(2, body, timeout=1.0)

    def test_unknown_reduce_op(self):
        def body(comm):
            comm.allreduce(1, "median")

        with pytest.raises(RuntimeCommError):
            spmd_run(2, body, timeout=1.0)

    def test_interleaved_collectives_and_p2p(self):
        def body(comm):
            total = comm.allreduce(comm.rank, "sum")
            if comm.rank == 0:
                comm.send(1, total)
            if comm.rank == 1:
                assert comm.recv(0) == total
            comm.barrier()
            return comm.bcast(total if comm.rank == 0 else None)

        w = spmd_run(2, body)
        assert w.results == [1, 1]


@given(values=st.lists(st.integers(-100, 100), min_size=2, max_size=5),
       op=st.sampled_from(["sum", "max", "min"]))
@settings(max_examples=20, deadline=None)
def test_property_allreduce_matches_python(values, op):
    impl = {"sum": sum, "max": max, "min": min}[op]

    def body(comm):
        return comm.allreduce(values[comm.rank], op)

    w = spmd_run(len(values), body)
    assert all(r == impl(values) for r in w.results)
