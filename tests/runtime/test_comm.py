"""Point-to-point and collective communication."""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RuntimeCommError
from repro.runtime import spmd_run


class TestPointToPoint:
    def test_send_recv(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, {"x": 42})
                return None
            return comm.recv(0)

        w = spmd_run(2, body)
        assert w.results[1] == {"x": 42}

    def test_numpy_payload_copied(self):
        def body(comm):
            if comm.rank == 0:
                buf = np.ones(4)
                comm.send(1, buf)
                buf[...] = 99.0  # must not affect the message
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(0)

        w = spmd_run(2, body)
        assert np.array_equal(w.results[1], np.ones(4))

    def test_tag_matching(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, "a", tag=1)
                comm.send(1, "b", tag=2)
                return None
            second = comm.recv(0, tag=2)
            first = comm.recv(0, tag=1)
            return (first, second)

        w = spmd_run(2, body)
        assert w.results[1] == ("a", "b")

    def test_any_source(self):
        def body(comm):
            if comm.rank != 0:
                comm.send(0, comm.rank)
                return None
            got = {comm.recv(None), comm.recv(None)}
            return got

        w = spmd_run(3, body)
        assert w.results[0] == {1, 2}

    def test_fifo_per_source_tag(self):
        def body(comm):
            if comm.rank == 0:
                for k in range(5):
                    comm.send(1, k)
                return None
            return [comm.recv(0) for _ in range(5)]

        w = spmd_run(2, body)
        assert w.results[1] == list(range(5))

    def test_sendrecv(self):
        def body(comm):
            peer = 1 - comm.rank
            return comm.sendrecv(peer, comm.rank * 10, source=peer)

        w = spmd_run(2, body)
        assert w.results == [10, 0]

    def test_isend_irecv(self):
        def body(comm):
            if comm.rank == 0:
                req = comm.isend(1, "hello")
                req.wait()
                return None
            req = comm.irecv(0)
            return req.wait()

        w = spmd_run(2, body)
        assert w.results[1] == "hello"

    def test_probe(self):
        def body(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag=9)
                comm.barrier()
                return None
            comm.barrier()
            assert comm.probe(0, 9)
            assert not comm.probe(0, 8)
            comm.recv(0, 9)
            return True

        spmd_run(2, body)

    def test_bad_rank(self):
        def body(comm):
            comm.send(5, 1)

        with pytest.raises(RuntimeCommError):
            spmd_run(2, body)

    def test_recv_timeout(self):
        def body(comm):
            if comm.rank == 1:
                comm.recv(0)  # never sent

        with pytest.raises(RuntimeCommError):
            spmd_run(2, body, timeout=0.3)


class TestCollectives:
    def test_barrier_all(self):
        order = []

        def body(comm):
            comm.barrier()
            order.append(comm.rank)
            comm.barrier()
            return len(order)

        w = spmd_run(3, body)
        assert all(r == 3 for r in w.results)

    def test_bcast(self):
        def body(comm):
            value = [1, 2, 3] if comm.rank == 0 else None
            return comm.bcast(value, root=0)

        w = spmd_run(4, body)
        assert all(r == [1, 2, 3] for r in w.results)

    def test_reduce_sum(self):
        def body(comm):
            return comm.reduce(comm.rank + 1, "sum", root=0)

        w = spmd_run(4, body)
        assert w.results[0] == 10
        assert w.results[1] is None

    def test_allreduce_ops(self):
        def body(comm):
            x = float(comm.rank + 1)
            return (comm.allreduce(x, "sum"), comm.allreduce(x, "max"),
                    comm.allreduce(x, "min"), comm.allreduce(x, "prod"))

        w = spmd_run(3, body)
        assert all(r == (6.0, 3.0, 1.0, 6.0) for r in w.results)

    def test_allreduce_numpy(self):
        def body(comm):
            return comm.allreduce(np.full(3, float(comm.rank)), "max")

        w = spmd_run(3, body)
        for r in w.results:
            assert np.array_equal(r, np.full(3, 2.0))

    def test_gather(self):
        def body(comm):
            return comm.gather(comm.rank ** 2, root=1)

        w = spmd_run(3, body)
        assert w.results[1] == [0, 1, 4]
        assert w.results[0] is None

    def test_allgather(self):
        def body(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        w = spmd_run(3, body)
        assert all(r == ["a", "b", "c"] for r in w.results)

    def test_scatter(self):
        def body(comm):
            values = [10, 20, 30] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        w = spmd_run(3, body)
        assert w.results == [10, 20, 30]

    def test_scatter_wrong_length(self):
        def body(comm):
            values = [1] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        with pytest.raises(RuntimeCommError):
            spmd_run(2, body, timeout=1.0)

    def test_unknown_reduce_op(self):
        def body(comm):
            comm.allreduce(1, "median")

        with pytest.raises(RuntimeCommError):
            spmd_run(2, body, timeout=1.0)

    def test_interleaved_collectives_and_p2p(self):
        def body(comm):
            total = comm.allreduce(comm.rank, "sum")
            if comm.rank == 0:
                comm.send(1, total)
            if comm.rank == 1:
                assert comm.recv(0) == total
            comm.barrier()
            return comm.bcast(total if comm.rank == 0 else None)

        w = spmd_run(2, body)
        assert w.results == [1, 1]


class TestNamedBugRegressions:
    """Dedicated regressions for the three latent comm bugs (each failed
    on the pre-overhaul runtime)."""

    def test_request_test_is_nonblocking(self):
        # Bug 1: Request.test() called self.wait(), blocking until the
        # message arrived (or the watchdog tripped) despite being
        # documented as a non-blocking completion check.
        def body(comm):
            if comm.rank == 1:
                req = comm.irecv(0, tag=3)
                t0 = time.perf_counter()
                ready = req.test()
                elapsed = time.perf_counter() - t0
                assert ready is False
                assert elapsed < 0.5, \
                    f"test() blocked for {elapsed:.2f}s on a pending recv"
                comm.barrier()  # rank 0 sends only after the False sample
                deadline = time.monotonic() + 5.0
                while not req.test():
                    assert time.monotonic() < deadline
                return req.wait()
            comm.barrier()
            comm.send(1, "payload", tag=3)
            return None

        w = spmd_run(2, body, timeout=2.0)
        assert w.results[1] == "payload"

    def test_isend_request_test_completes_immediately(self):
        def body(comm):
            if comm.rank == 0:
                req = comm.isend(1, 42)
                assert req.test() is True
                return None
            return comm.recv(0)

        w = spmd_run(2, body)
        assert w.results[1] == 42

    def test_timeout_is_wall_clock_under_notify_traffic(self):
        # Bug 2: _Mailbox.get charged a full 50 ms tick per wakeup
        # (waited += 0.05), so ~0.5 s of unrelated message arrivals
        # exhausted a 2 s budget and tripped a spurious recv timeout.
        def body(comm):
            if comm.rank == 1:
                return comm.recv(0, tag=7)
            for k in range(100):
                comm.send(1, k, tag=9)  # unrelated traffic wakes rank 1
                time.sleep(0.002)
            time.sleep(0.3)
            comm.send(1, "match", tag=7)
            return None

        w = spmd_run(2, body, timeout=2.0)
        assert w.results[1] == "match"

    def test_user_tag_in_reserved_collective_space_rejected(self):
        # Bug 3: allreduce's down tag was up_tag + 2**19, so any tag in
        # [2**20, 2**20 + 2**19) could alias a later up phase and any tag
        # above could alias a down phase, silently stealing a reduction.
        # The collective tag space is now reserved and enforced.
        def body(comm):
            if comm.rank == 0:
                comm.send(1, "stolen", tag=(1 << 20) + (1 << 19) + 7)
            else:
                comm.recv(0, tag=(1 << 20) + (1 << 19) + 7)

        with pytest.raises(RuntimeCommError):
            spmd_run(2, body, timeout=2.0)

    def test_collective_tag_pairs_disjoint_across_wraparound(self):
        # Direct check of the allocator at the old collision boundary:
        # pre-overhaul, down(seq) == up(seq + 2**19).
        from repro.runtime.comm import _COLLECTIVE_TAG_BASE, _collective_tags

        half = 1 << 19
        seen: set[int] = set()
        for seq in (1, 2, 7, half - 1, half, half + 1, half + 2,
                    half + 7, (1 << 20) + 3):
            up, down = _collective_tags(seq)
            assert up >= _COLLECTIVE_TAG_BASE
            assert down >= _COLLECTIVE_TAG_BASE
            assert up != down
            assert {up, down}.isdisjoint(seen), \
                f"tag collision at seq {seq}"
            seen |= {up, down}

    def test_collectives_correct_across_seq_wraparound(self):
        # Mixed collectives crossing the 2**19 sequence boundary must all
        # deliver the right values.
        half = 1 << 19

        def body(comm):
            comm._collective_seq = half - 3
            out = []
            for k in range(6):
                out.append(comm.allreduce(comm.rank + k, "sum"))
                out.append(comm.bcast(k * 10 if comm.rank == 0 else None))
            return out

        w = spmd_run(3, body, timeout=5.0)
        expect = []
        for k in range(6):
            expect.append(3 + 3 * k)  # sum of rank+k over ranks 0..2
            expect.append(k * 10)
        assert all(r == expect for r in w.results)


@given(values=st.lists(st.integers(-100, 100), min_size=2, max_size=5),
       op=st.sampled_from(["sum", "max", "min"]))
@settings(max_examples=20, deadline=None)
def test_property_allreduce_matches_python(values, op):
    impl = {"sum": sum, "max": max, "min": min}[op]

    def body(comm):
        return comm.allreduce(values[comm.rank], op)

    w = spmd_run(len(values), body)
    assert all(r == impl(values) for r in w.results)
