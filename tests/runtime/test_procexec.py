"""Process executor: the Communicator contract across real OS processes.

The thread executor's guarantees — failure propagation with rank
attribution, deadlock diagnosis naming the wait-for cycle, bounded joins
that name stuck ranks, executor-agnostic traces — must survive the jump
to one-process-per-rank, where a "stuck rank" can be a SIGKILLed worker
and every payload crosses a pickle or shared-memory boundary.

Rank bodies here are module-level functions: the process executor pickles
them to the workers (closures are rejected with a clear error, which is
itself under test).
"""

import os
import time

import numpy as np
import pytest

from repro.errors import RuntimeCommError, RuntimeDeadlockError
from repro.runtime.procexec import get_pool, proc_run
from repro.runtime.trace import Trace
from repro.runtime.world import spmd_run


# -- module-level rank bodies (picklable) ------------------------------------

def _pingpong(comm):
    if comm.rank == 0:
        comm.send(1, {"n": 41})
        return comm.recv(1)
    msg = comm.recv(0)
    comm.send(0, msg["n"] + 1)
    return "pong"


def _collectives(comm):
    total = comm.allreduce(comm.rank + 1)
    gathered = comm.gather(comm.rank * 10, root=0)
    comm.barrier()
    seeded = comm.bcast(99 if comm.rank == 0 else None, root=0)
    return total, gathered, seeded


def _halo_move(comm):
    field = np.full((32, 16), float(comm.rank + 1))
    peer = 1 - comm.rank
    faces = [np.ascontiguousarray(field[0]),
             np.ascontiguousarray(field[-1])]
    comm.send(peer, faces, tag=3, move=True)
    got = comm.recv(peer, 3)
    return [f.tolist() for f in got]


def _big_move(comm):
    # larger than a ring slot's initial size: exercises ring growth
    peer = 1 - comm.rank
    block = np.arange(40_000, dtype=np.float64) + comm.rank
    comm.send(peer, block, tag=1, move=True)
    return float(comm.recv(peer, 1).sum())


def _boom(comm):
    if comm.rank == 1:
        raise ValueError("kaboom")
    comm.barrier()


def _cycle(comm):
    comm.recv((comm.rank + 1) % comm.size)


def _suicide(comm):
    if comm.rank == 0:
        os.kill(os.getpid(), 9)
    comm.recv(0)


def _spin_then_die(comm):
    if comm.rank == 0:
        raise RuntimeError("first failure")
    while True:  # compute-only: never observes the world failure
        time.sleep(0.01)


def _traced(comm):
    peer = 1 - comm.rank
    comm.send(peer, comm.rank, tag=1)
    comm.recv(peer, 1)
    time.sleep(0.01)
    return comm.rank


class TestHappyPath:
    def test_pingpong_and_result_collection(self):
        w = proc_run(2, _pingpong, timeout=15.0)
        assert w.results == [42, "pong"]

    def test_collectives_match_thread_executor(self):
        thread = spmd_run(4, _collectives, timeout=15.0)
        proc = spmd_run(4, _collectives, timeout=15.0,
                        executor="process")
        assert proc.results == thread.results

    def test_move_payloads_cross_the_shm_ring(self):
        w = proc_run(2, _halo_move, timeout=15.0)
        # each rank receives its peer's faces, bit-for-bit
        assert w.results[0] == [[2.0] * 16, [2.0] * 16]
        assert w.results[1] == [[1.0] * 16, [1.0] * 16]

    def test_oversize_move_grows_the_ring(self):
        base = float(np.arange(40_000, dtype=np.float64).sum())
        w = proc_run(2, _big_move, timeout=15.0)
        assert w.results == [base + 40_000, base]

    def test_pool_is_reused_across_runs(self):
        proc_run(2, _pingpong, timeout=15.0)
        pids = [w.process.pid for w in get_pool(2).workers]
        proc_run(2, _pingpong, timeout=15.0)
        assert [w.process.pid for w in get_pool(2).workers] == pids

    def test_dispatch_through_spmd_run(self):
        w = spmd_run(2, _pingpong, timeout=15.0, executor="process")
        assert w.results == [42, "pong"]
        with pytest.raises(RuntimeCommError, match="unknown executor"):
            spmd_run(2, _pingpong, executor="fiber")


class TestFailures:
    def test_failure_propagates_with_rank_attribution(self):
        with pytest.raises(RuntimeCommError,
                           match="rank 1 failed: ValueError: kaboom"):
            proc_run(2, _boom, timeout=10.0)

    def test_deadlock_diagnosis_names_the_cycle(self):
        with pytest.raises(RuntimeDeadlockError) as exc_info:
            proc_run(2, _cycle, timeout=60.0)
        msg = str(exc_info.value)
        assert "wait-for cycle" in msg
        assert "rank 0 -> rank 1 -> rank 0" in msg
        # and it came from detection, not the 60 s watchdog

    def test_sigkilled_worker_is_detected_and_named(self):
        with pytest.raises(RuntimeCommError) as exc_info:
            proc_run(2, _suicide, timeout=5.0)
        msg = str(exc_info.value)
        assert "rank 0" in msg
        assert "died without reporting" in msg

    def test_pool_recovers_after_a_worker_death(self):
        with pytest.raises(RuntimeCommError):
            proc_run(2, _suicide, timeout=5.0)
        w = proc_run(2, _pingpong, timeout=15.0)
        assert w.results == [42, "pong"]

    def test_stuck_compute_rank_is_killed_and_named(self):
        t0 = time.monotonic()
        with pytest.raises(RuntimeCommError) as exc_info:
            proc_run(2, _spin_then_die, timeout=1.5)
        msg = str(exc_info.value)
        assert "rank(s) 1" in msg and "did not stop" in msg
        assert "rank 0" in msg and "first failure" in msg
        assert time.monotonic() - t0 < 30.0
        # the spinner was killed, not leaked: the pool respawns it
        w = proc_run(2, _pingpong, timeout=15.0)
        assert w.results == [42, "pong"]

    def test_unpicklable_body_is_rejected_eagerly(self):
        captured = {}
        with pytest.raises(RuntimeCommError, match="picklable"):
            proc_run(2, lambda comm: captured, timeout=5.0)


class TestTraceMerge:
    def test_worker_events_land_on_the_callers_clock(self):
        trace = Trace()
        w = spmd_run(2, _traced, timeout=15.0, trace=trace,
                     executor="process")
        assert w.results == [0, 1]
        events = trace.snapshot()
        kinds = {e.kind for e in events}
        assert {"send", "recv", "rank"} <= kinds
        assert {e.rank for e in events if e.kind == "rank"} == {0, 1}
        for e in events:
            assert e.t0 >= 0.0, f"{e.kind} landed before the epoch"
            assert e.t1 >= e.t0, f"{e.kind} span runs backwards"
        # rank envelopes cover the bodies' sleeps on the merged clock
        env = {e.rank: e for e in events if e.kind == "rank"}
        assert env[0].dur >= 0.01 and env[1].dur >= 0.01

    def test_crashed_rank_still_ships_its_trace(self):
        trace = Trace()
        with pytest.raises(RuntimeCommError):
            spmd_run(2, _boom, timeout=10.0, trace=trace,
                     executor="process")
        envelopes = {e.rank for e in trace.snapshot()
                     if e.kind == "rank"}
        assert 1 in envelopes, "the failing rank's envelope was lost"
