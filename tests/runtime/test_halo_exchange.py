"""Aggregated halo exchange over distributed OffsetArrays."""

import numpy as np
import pytest

from repro.errors import RuntimeCommError
from repro.interp.values import OffsetArray
from repro.partition.grid import GridGeometry
from repro.partition.halo import GhostSpec, ghost_bounds
from repro.partition.partitioner import Partition
from repro.runtime import (BufferPool, CartComm, HaloExchanger, HaloSpec,
                           spmd_run)


def global_field(shape):
    """A distinguishable global array: value encodes the coordinates."""
    arr = OffsetArray(tuple(shape))
    it = np.ndindex(*shape)
    for idx in it:
        arr.data[idx] = sum((c + 1) * 100 ** d for d, c in enumerate(idx))
    return arr


def distributed_run(grid_shape, dims, dist, arrays=1):
    """Each rank owns a block + ghosts; after exchange, every ghost cell
    must equal the global field value at its coordinate."""
    grid = GridGeometry(grid_shape)
    part = Partition(grid, dims)
    ndims = len(grid_shape)
    reference = global_field(grid_shape)
    ghosts = GhostSpec(tuple(dist for _ in range(ndims)))
    dim_map = tuple(range(ndims))

    def body(comm):
        cart = CartComm(comm, dims)
        sub = part.subgrid(comm.rank)
        bounds = ghost_bounds(part, comm.rank, dim_map,
                              [(1, n) for n in grid_shape], ghosts)
        locals_ = []
        for _k in range(arrays):
            local = OffsetArray.from_bounds(bounds, name="v")
            local.set_section(list(sub.owned),
                              reference.section(list(sub.owned)))
            locals_.append(local)
        specs = [HaloSpec(a, dim_map, sub.owned,
                          tuple(dist for _ in range(ndims)))
                 for a in locals_]
        HaloExchanger(cart, specs).exchange()
        # every cell of the local array (owned + ghost) now matches
        for a in locals_:
            got = a.section(a.bounds)
            want = reference.section(a.bounds)
            assert np.array_equal(got, want), \
                f"rank {comm.rank} ghost mismatch"
        return True

    w = spmd_run(int(np.prod(dims)), body)
    assert all(w.results)
    return w


class TestExchange1D:
    def test_two_ranks(self):
        distributed_run((12,), (2,), (1, 1))

    def test_four_ranks(self):
        distributed_run((13,), (4,), (1, 1))

    def test_distance_two(self):
        distributed_run((16,), (2,), (2, 2))

    def test_asymmetric_distance(self):
        distributed_run((16,), (4,), (2, 0))


class TestExchange2D:
    def test_2x2(self):
        distributed_run((8, 8), (2, 2), (1, 1))

    def test_4x1(self):
        distributed_run((8, 6), (4, 1), (1, 1))

    def test_2x3_uneven(self):
        distributed_run((7, 9), (2, 3), (1, 1))

    def test_corners_via_two_phase(self):
        # the dimension-ordered exchange must deliver diagonal values
        # (needed by 9-point stencils); checked by full-field equality
        distributed_run((6, 6), (2, 2), (1, 1))


class TestExchange3D:
    def test_2x2x2(self):
        distributed_run((6, 6, 6), (2, 2, 2), (1, 1))

    def test_3x2x1(self):
        distributed_run((9, 6, 4), (3, 2, 1), (1, 1))


class TestAggregation:
    def test_multiple_arrays_one_message_per_neighbor(self):
        w = distributed_run((12,), (2,), (1, 1), arrays=3)
        sends = w.trace.messages(rank=0)
        # one aggregated message to the single neighbor (3 arrays inside)
        assert len(sends) == 1

    def test_exchange_event_recorded(self):
        w = distributed_run((12,), (2,), (1, 1))
        assert w.trace.count("exchange") == 2  # one per rank


class TestZeroCopyPool:
    def test_exchange_saves_copies_and_reuses_buffers(self):
        grid_shape, dims, dist = (64,), (2,), (2, 2)
        grid = GridGeometry(grid_shape)
        part = Partition(grid, dims)
        reference = global_field(grid_shape)
        ghosts = GhostSpec((dist,))
        pool = BufferPool()

        def body(comm):
            cart = CartComm(comm, dims)
            sub = part.subgrid(comm.rank)
            bounds = ghost_bounds(part, comm.rank, (0,),
                                  [(1, grid_shape[0])], ghosts)
            local = OffsetArray.from_bounds(bounds, name="v")
            local.set_section(list(sub.owned),
                              reference.section(list(sub.owned)))
            spec = HaloSpec(local, (0,), sub.owned, (dist,))
            ex = HaloExchanger(cart, [spec], pool=pool)
            ex.exchange()
            comm.barrier()  # round 1's buffers are all back in the pool
            ex.exchange()
            got = local.section(local.bounds)
            assert np.array_equal(got, reference.section(local.bounds))
            return True

        w = spmd_run(2, body)
        assert all(w.results)
        # the move path shipped each face without a send-side copy
        assert w.trace.saved_bytes() > 0
        stats = pool.stats()
        assert stats["hits"] > 0, "second exchange did not reuse buffers"
        assert stats["reused_bytes"] > 0

    def test_pool_recycles_released_buffers(self):
        pool = BufferPool()
        a = pool.acquire((4, 3), np.float64)
        pool.release(a)
        b = pool.acquire((4, 3), np.float64)
        assert b is a
        assert pool.stats() == {"hits": 1, "misses": 1,
                                "reused_bytes": a.nbytes, "pooled": 0,
                                "outstanding": 1, "leaks": 0, "drains": 0}
        # different shape or dtype must not alias
        c = pool.acquire((3, 4), np.float64)
        assert c is not a
        pool.release(b)
        d = pool.acquire((4, 3), np.float32)
        assert d is not b


class TestMixedDtype:
    def test_zero_width_face_keeps_spec_dtype(self):
        # a default-float64 empty here ships a mismatched section when
        # integer status arrays ride in an aggregated exchange
        a = OffsetArray((6,), dtype=np.int32, name="s")
        spec = HaloSpec(a, (0,), ((1, 6),), ((1, 0),))
        face = spec.send_section(0, -1)  # plus-distance 0: empty face
        assert face.size == 0
        assert face.dtype == np.int32

    def test_mixed_dtype_aggregated_exchange(self):
        # one float and one integer array in the same exchanger, with an
        # asymmetric distance so zero-width faces actually travel
        grid_shape, dims, dist = (12,), (2,), (2, 0)
        grid = GridGeometry(grid_shape)
        part = Partition(grid, dims)
        ref_f = global_field(grid_shape)
        ref_i = OffsetArray(grid_shape, dtype=np.int64)
        ref_i.data[:] = np.arange(grid_shape[0]) * 7 + 1
        ghosts = GhostSpec((dist,))

        def body(comm):
            cart = CartComm(comm, dims)
            sub = part.subgrid(comm.rank)
            bounds = ghost_bounds(part, comm.rank, (0,),
                                  [(1, grid_shape[0])], ghosts)
            lf = OffsetArray.from_bounds(bounds, name="f")
            li = OffsetArray.from_bounds(bounds, dtype=np.int64, name="s")
            lf.set_section(list(sub.owned),
                           ref_f.section(list(sub.owned)))
            li.set_section(list(sub.owned),
                           ref_i.section(list(sub.owned)))
            specs = [HaloSpec(a, (0,), sub.owned, (dist,))
                     for a in (lf, li)]
            HaloExchanger(cart, specs).exchange()
            assert li.data.dtype == np.int64
            assert np.array_equal(lf.section(lf.bounds),
                                  ref_f.section(lf.bounds))
            assert np.array_equal(li.section(li.bounds),
                                  ref_i.section(li.bounds))
            return True

        w = spmd_run(2, body)
        assert all(w.results)


class TestErrors:
    def test_payload_count_mismatch(self):
        def body(comm):
            cart = CartComm(comm, (2,))
            a = OffsetArray.from_bounds([(1, 6)], name="v")
            sub_owned = ((1, 5),) if comm.rank == 0 else ((6, 10),)
            a = OffsetArray.from_bounds(
                [(1, 6)] if comm.rank == 0 else [(5, 10)], name="v")
            spec = HaloSpec(a, (0,), sub_owned, ((1, 1),))
            if comm.rank == 0:
                # rank 0 sends two arrays, rank 1 expects one
                HaloExchanger(cart, [spec, spec]).exchange()
            else:
                HaloExchanger(cart, [spec]).exchange()

        with pytest.raises(RuntimeCommError):
            spmd_run(2, body, timeout=5.0)

    def test_dim_map_rank_mismatch(self):
        a = OffsetArray((4, 4))
        with pytest.raises(RuntimeCommError):
            HaloSpec(a, (0,), ((1, 4), (1, 4)), ((1, 1), (1, 1)))
