"""Request completion is idempotent on both executors.

``finish()`` waits on every pending receive; a retry path (or defensive
double-wait) must not re-receive, re-record trace events, or double any
byte counter.  ``wait()`` caches its result and ``test()`` after
completion is a pure query — locked in here for the thread and the
process executor, since the overlap runtime leans on it.
"""

from repro.runtime.world import spmd_run


# module-level bodies: the process executor pickles them to workers

def _wait_twice(comm):
    if comm.rank == 0:
        comm.send(1, {"n": 7}, tag=4)
        return None
    req = comm.irecv(0, tag=4)
    first = req.wait()
    second = req.wait()  # must be the cached result, not a new receive
    assert first is second
    assert first == {"n": 7}
    return first["n"]


def _test_after_complete(comm):
    if comm.rank == 0:
        comm.send(1, 99, tag=5)
        return None
    req = comm.irecv(0, tag=5)
    got = req.wait()
    # repeated polls after completion are pure queries
    assert req.test() is True
    assert req.test() is True
    assert req.wait() == got
    return got


def _isend_wait_twice(comm):
    if comm.rank == 0:
        req = comm.isend(1, 13, tag=6)
        req.wait()
        req.wait()
        assert req.test() is True
        return None
    return comm.recv(0, tag=6)


class TestThreadExecutor:
    def test_double_wait_receives_once(self):
        w = spmd_run(2, _wait_twice, timeout=10.0)
        assert w.results[1] == 7
        # one send event, one recv event — the second wait() added nothing
        assert w.trace.count("send") == 1
        assert w.trace.count("recv") == 1
        assert sum(e.nbytes for e in w.trace.snapshot()
                   if e.kind == "recv") == \
            sum(e.nbytes for e in w.trace.snapshot() if e.kind == "send")

    def test_test_after_complete_adds_no_events(self):
        w = spmd_run(2, _test_after_complete, timeout=10.0)
        assert w.results[1] == 99
        assert w.trace.count("recv") == 1

    def test_isend_wait_idempotent(self):
        w = spmd_run(2, _isend_wait_twice, timeout=10.0)
        assert w.results[1] == 13
        assert w.trace.count("send") == 1


class TestProcessExecutor:
    def test_double_wait_receives_once(self):
        w = spmd_run(2, _wait_twice, timeout=15.0, executor="process")
        assert w.results[1] == 7
        assert w.trace.count("send") == 1
        assert w.trace.count("recv") == 1

    def test_test_after_complete_adds_no_events(self):
        w = spmd_run(2, _test_after_complete, timeout=15.0,
                     executor="process")
        assert w.results[1] == 99
        assert w.trace.count("recv") == 1

    def test_isend_wait_idempotent(self):
        w = spmd_run(2, _isend_wait_twice, timeout=15.0,
                     executor="process")
        assert w.results[1] == 13
        assert w.trace.count("send") == 1
