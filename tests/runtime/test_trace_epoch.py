"""Cross-process trace merging: the epoch handshake.

``Trace.epoch``/``epoch_ns`` are captured per process and monotonic
clocks are not guaranteed comparable across processes — merging worker
events onto the caller's trace without normalizing would put them on the
wrong clock.  These tests drive :class:`EpochProbe`/:func:`epoch_shift`
/:meth:`Trace.absorb` with deliberately skewed clocks and assert the
merged spans come out monotone and non-negative.  The end-to-end version
over real worker processes lives in ``tests/runtime/test_procexec.py``.
"""

import time

from repro.runtime.trace import EpochProbe, Trace, TraceEvent, epoch_shift


def _skewed_worker_trace(skew: float) -> tuple[Trace, EpochProbe]:
    """A 'worker' trace whose clock runs *skew* seconds off the
    caller's: epoch fields are shifted as if sampled on another clock."""
    trace = Trace()
    probe = EpochProbe(epoch=trace.epoch + skew,
                       epoch_ns=trace.epoch_ns + int(skew * 1e9),
                       sampled_at=time.monotonic() + skew)
    return trace, probe


class TestHandshake:
    def test_identical_clocks_shift_by_elapsed_time_only(self):
        parent = Trace()
        time.sleep(0.01)
        worker = Trace()
        probe = EpochProbe.sample(worker)
        shift = epoch_shift(probe, time.monotonic(), parent)
        # worker epoch is later than parent epoch; same clock, so the
        # shift is just the (positive) spawn delay
        assert 0.0 < shift < 5.0
        assert abs(shift - (worker.epoch - parent.epoch)) < 0.05

    def test_cross_clock_skew_is_cancelled(self):
        # worker clock runs 1000 s ahead of the parent's: raw epochs are
        # not comparable, but the handshake measures the offset and the
        # shift lands events back on the parent's clock
        parent = Trace()
        for skew in (1000.0, -1000.0):
            _worker, probe = _skewed_worker_trace(skew)
            received_at = time.monotonic()
            shift = epoch_shift(probe, received_at, parent)
            # the worker's "now" (epoch-relative 0) must map close to
            # the parent's now, regardless of skew
            parent_now = time.monotonic() - parent.epoch
            assert abs(shift - parent_now) < 0.5

    def test_merged_spans_are_monotone_and_non_negative(self):
        parent = Trace()
        parent.record(TraceEvent(0, "send", 1, 8, t0=0.001, t1=0.002))
        worker = Trace()  # spawned after the parent: later epoch
        probe = EpochProbe.sample(worker)
        shift = epoch_shift(probe, time.monotonic(), parent)
        events = [TraceEvent(1, "recv", 0, 8, t0=0.000, t1=0.003),
                  TraceEvent(1, "rank", None, 0, t0=0.000, t1=0.010)]
        parent.absorb(events, shift)
        merged = parent.snapshot()
        assert len(merged) == 3
        for e in merged:
            assert e.t0 >= 0.0, f"{e.kind} landed before the epoch"
            assert e.t1 >= e.t0, f"{e.kind} span runs backwards"
        # worker events land after the moment the parent epoch started
        absorbed = [e for e in merged if e.rank == 1]
        assert all(e.t0 >= 0.0 for e in absorbed)

    def test_absorb_keeps_untimed_sentinels(self):
        parent = Trace()
        parent.absorb([TraceEvent(0, "pipeline_send", 1, 0)], shift=5.0)
        (event,) = parent.snapshot()
        # the t0 == t1 == 0.0 "no timing" sentinel must not be shifted
        # into a fabricated timestamp
        assert event.t0 == 0.0 and event.t1 == 0.0

    def test_absorb_respects_disabled_traces(self):
        parent = Trace(enabled=False)
        parent.absorb([TraceEvent(0, "send", 1, 8, t0=0.1, t1=0.2)], 0.0)
        assert parent.events == []
