"""The inlined frame program: slots, call expansion, containment."""

import pytest

from repro.analysis.frame import build_frame_program
from repro.errors import AnalysisError
from repro.fortran.parser import parse_source

MULTI_CALL = """\
!$acfd status v
!$acfd grid 8 8
program p
  integer i, j, it
  real v(8, 8)
  common /f/ v
  do it = 1, 5
    call a()
    call b()
    call a()
  end do
end
subroutine a()
  integer i, j
  common /f/ v(8, 8)
  real v
  do i = 1, 8
    do j = 1, 8
      v(i, j) = v(i, j) + 1.0
    end do
  end do
end
subroutine b()
  integer i, j
  common /f/ v(8, 8)
  real v
  do i = 2, 7
    do j = 2, 7
      v(i, j) = v(i - 1, j)
    end do
  end do
end
"""


def frame_of(src: str):
    return build_frame_program(parse_source(src))


class TestInlining:
    def test_call_counts(self):
        frame = frame_of(MULTI_CALL)
        assert frame.call_counts["a"] == 2
        assert frame.call_counts["b"] == 1

    def test_field_loop_instances_per_call(self):
        frame = frame_of(MULTI_CALL)
        # a's loop twice + b's loop once
        assert len(frame.field_loop_instances) == 3

    def test_distinct_call_paths(self):
        frame = frame_of(MULTI_CALL)
        paths = {inst.call_path for inst in frame.field_loop_instances}
        assert len(paths) == 3

    def test_recursion_rejected(self):
        src = """\
!$acfd status v
!$acfd grid 4 4
program p
  real v(4, 4)
  call r()
end
subroutine r()
  call r()
end
"""
        with pytest.raises(AnalysisError):
            frame_of(src)


class TestSlots:
    def test_slots_unique_and_ordered(self):
        frame = frame_of(MULTI_CALL)
        used = []
        for node in frame.nodes:
            used.extend([node.open, node.close])
        assert sorted(used) == list(range(frame.slot_count))

    def test_open_before_close(self):
        frame = frame_of(MULTI_CALL)
        for node in frame.nodes:
            assert node.open < node.close

    def test_children_inside_parent(self):
        frame = frame_of(MULTI_CALL)
        for node in frame.nodes:
            for child in node.children:
                assert node.open < child.open
                assert child.close < node.close

    def test_node_at_open_close(self):
        frame = frame_of(MULTI_CALL)
        node = frame.field_loop_instances[0]
        assert frame.node_at_open(node.open) is node
        assert frame.node_at_close(node.close) is node


class TestQueries:
    def test_common_enclosing_loop(self):
        frame = frame_of(MULTI_CALL)
        a1, b1, a2 = frame.field_loop_instances
        carrier = frame.common_enclosing_loop(a1, a2)
        assert carrier is not None
        assert carrier.kind == "loop"
        assert carrier.stmt.var == "it"

    def test_enclosing_loops_innermost_first(self):
        frame = frame_of(MULTI_CALL)
        inst = frame.field_loop_instances[0]
        loops = inst.enclosing_loops()
        assert [l.stmt.var for l in loops] == ["it"]

    def test_allowed_slots_exclude_interiors(self):
        frame = frame_of(MULTI_CALL)
        a1, b1, a2 = frame.field_loop_instances
        # region between end of a1's subtree and start of b1 spans the
        # gap between the two call statements; b1's loop interior is not
        # inside the range, but any structured node fully inside is
        start = a1.close + 1
        end = b1.open
        allowed = frame.allowed_slots(start, end)
        assert allowed, "region should have placement slots"
        for node in frame.nodes:
            if node.open >= start and node.close <= end:
                for p in allowed:
                    assert not (node.open < p <= node.close)

    def test_allowed_slots_empty_for_reversed(self):
        frame = frame_of(MULTI_CALL)
        assert frame.allowed_slots(10, 5) == []

    def test_location_points_to_unit(self):
        frame = frame_of(MULTI_CALL)
        a1 = frame.field_loop_instances[0]
        unit, path = a1.location
        assert unit == "a"
        assert path
