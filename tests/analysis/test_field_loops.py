"""Field-loop identification and the A/R/C/O taxonomy of Figure 1."""

from repro.analysis.field_loops import LoopRole, classify_unit
from repro.fortran.parser import parse_source

#: Figure 1 of the paper, as one program: four loop types over v.
FIGURE1 = """\
!$acfd status v, w
!$acfd grid 10 10
program fig1
  implicit none
  integer i, j, m, n
  parameter (m = 10, n = 10)
  real v(m, n), w(m, n), x
  do i = 1, m
    do j = 1, n
      v(i, j) = float(i + j)
    end do
  end do
  do i = 1, m
    do j = 1, n
      x = v(i - 1, j) * 2.0
    end do
  end do
  do i = 1, m
    do j = 1, n
      v(i, j) = v(i - 1, j + 1) + 1.0
    end do
  end do
  do i = 1, m
    do j = 1, n
      w(i, j) = float(i)
    end do
  end do
end program fig1
"""


def classify(src: str):
    cu = parse_source(src)
    return classify_unit(cu.main, cu.directives)


class TestFigure1Taxonomy:
    def test_four_field_loops(self):
        cls = classify(FIGURE1)
        assert len(cls.field_loops) == 4

    def test_a_type(self):
        cls = classify(FIGURE1)
        assert cls.field_loops[0].role("v") is LoopRole.A

    def test_r_type(self):
        cls = classify(FIGURE1)
        assert cls.field_loops[1].role("v") is LoopRole.R

    def test_c_type(self):
        cls = classify(FIGURE1)
        assert cls.field_loops[2].role("v") is LoopRole.C
        assert cls.field_loops[2].is_self_dependent

    def test_o_type(self):
        cls = classify(FIGURE1)
        assert cls.field_loops[3].role("v") is LoopRole.O
        assert cls.field_loops[3].role("w") is LoopRole.A


class TestSweeps:
    def test_both_dims_swept(self):
        cls = classify(FIGURE1)
        assert cls.field_loops[0].sweeps == {0: "i", 1: "j"}

    def test_frame_loop_not_field_loop(self):
        cls = classify("""\
!$acfd status v
!$acfd grid 6 6
program p
  integer it, i, j
  real v(6, 6)
  do it = 1, 10
    do i = 1, 6
      do j = 1, 6
        v(i, j) = float(it)
      end do
    end do
  end do
end
""")
        assert len(cls.field_loops) == 1
        assert cls.field_loops[0].loop.var == "i"

    def test_boundary_loop_sweeps_one_dim(self):
        cls = classify("""\
!$acfd status v
!$acfd grid 6 6
program p
  integer j
  real v(6, 6)
  do j = 1, 6
    v(1, j) = 0.0
  end do
end
""")
        fl = cls.field_loops[0]
        assert fl.sweeps == {1: "j"}
        assert fl.uses["v"].fixed_dims == {0: 1}

    def test_two_adjacent_field_loops_in_one_outer(self):
        cls = classify("""\
!$acfd status v
!$acfd grid 6 6
program p
  integer it, i, j
  real v(6, 6)
  do it = 1, 3
    do i = 1, 6
      do j = 1, 6
        v(i, j) = 1.0
      end do
    end do
    do i = 1, 6
      do j = 1, 6
        v(i, j) = v(i, j) * 2.0
      end do
    end do
  end do
end
""")
        assert len(cls.field_loops) == 2


class TestOffsets:
    def test_read_offsets_recorded(self):
        cls = classify(FIGURE1)
        use = cls.field_loops[2].uses["v"]
        assert use.read_offsets[0] == {-1}
        assert use.read_offsets[1] == {1}

    def test_max_read_distance(self):
        cls = classify("""\
!$acfd status v, w
!$acfd grid 8 8
!$acfd distance 2
program p
  integer i, j
  real v(8, 8), w(8, 8)
  do i = 3, 6
    do j = 3, 6
      w(i, j) = v(i - 2, j) + v(i + 1, j)
    end do
  end do
end
""")
        use = cls.field_loops[0].uses["v"]
        assert use.max_read_distance(0) == (2, 1)
        assert use.max_read_distance(1) == (0, 0)

    def test_irregular_flag(self):
        cls = classify("""\
!$acfd status v
!$acfd grid 8 8
program p
  integer i, j, g(8)
  real v(8, 8)
  do i = 1, 8
    do j = 1, 8
      v(i, j) = v(g(i), j)
    end do
  end do
end
""")
        assert cls.field_loops[0].uses["v"].irregular
        assert cls.field_loops[0].is_self_dependent


class TestPackedArrays:
    def test_extended_dims_not_swept(self):
        cls = classify("""\
!$acfd status q
!$acfd grid 6 6
program p
  integer i, j, s
  real q(6, 6, 3)
  do s = 1, 3
    do i = 1, 6
      do j = 1, 6
        q(i, j, s) = float(s)
      end do
    end do
  end do
end
""")
        # the s loop does not sweep a status dim, so the field loop root
        # is the i loop
        assert len(cls.field_loops) == 1
        fl = cls.field_loops[0]
        assert fl.loop.var == "i"
        assert fl.sweeps == {0: "i", 1: "j"}

    def test_explicit_dims_directive(self):
        cls = classify("""\
!$acfd status q
!$acfd grid 6 6
!$acfd dims q 0 1 2
program p
  integer i, j, s
  real q(3, 6, 6)
  do s = 1, 3
    do i = 1, 6
      do j = 1, 6
        q(s, i, j) = q(s, i - 1, j)
      end do
    end do
  end do
end
""")
        fl = cls.field_loops[0]
        assert fl.sweeps == {0: "i", 1: "j"}
        assert fl.uses["q"].read_offsets[0] == {-1}
