"""Call-graph utilities for interprocedural analysis."""

import pytest

from repro.analysis.callgraph import (
    build_call_graph,
    summarize_callee,
    unit_has_rtype_loop,
)
from repro.analysis.field_loops import classify_unit
from repro.fortran.parser import parse_source

SRC = """\
!$acfd status v
!$acfd grid 8 8
program p
  real v(8, 8)
  common /f/ v
  call top()
end
subroutine top()
  call writer()
  call reader()
end
subroutine writer()
  integer i, j
  common /f/ v(8, 8)
  real v
  do i = 1, 8
    do j = 1, 8
      v(i, j) = 1.0
    end do
  end do
end
subroutine reader()
  integer i, j
  common /f/ v(8, 8)
  real v
  do i = 2, 7
    do j = 2, 7
      x = v(i - 1, j)
    end do
  end do
end
"""


def setup():
    cu = parse_source(SRC)
    graph = build_call_graph(cu)
    classifications = {u.name: classify_unit(u, cu.directives)
                       for u in cu.units}
    return cu, graph, classifications


class TestGraph:
    def test_edges(self):
        _, graph, _ = setup()
        assert graph.callees("p") == {"top"}
        assert graph.callees("top") == {"writer", "reader"}
        assert graph.callees("reader") == set()

    def test_transitive(self):
        _, graph, _ = setup()
        assert graph.transitive_callees("p") == {"top", "writer", "reader"}

    def test_no_recursion(self):
        _, graph, _ = setup()
        assert not graph.has_recursion()

    def test_recursion_detected(self):
        cu = parse_source(
            "program p\ncall a()\nend\nsubroutine a()\ncall b()\nend\n"
            "subroutine b()\ncall a()\nend\n")
        assert build_call_graph(cu).has_recursion()

    def test_call_sites(self):
        _, graph, _ = setup()
        assert len(graph.call_sites("top")) == 2

    def test_unknown_callee_ignored(self):
        cu = parse_source("program p\ncall mylib()\nend\n")
        graph = build_call_graph(cu)
        assert graph.callees("p") == set()


class TestRTypePredicate:
    def test_reader_has_rtype(self):
        _, graph, cls = setup()
        assert unit_has_rtype_loop(cls["reader"], graph, cls, "v")

    def test_writer_has_no_rtype(self):
        _, graph, cls = setup()
        assert not unit_has_rtype_loop(cls["writer"], graph, cls, "v")

    def test_transitive_through_top(self):
        _, graph, cls = setup()
        assert unit_has_rtype_loop(cls["top"], graph, cls, "v")

    def test_any_array_mode(self):
        _, graph, cls = setup()
        assert unit_has_rtype_loop(cls["p"], graph, cls, None)


class TestCallSitesErrors:
    def test_unknown_caller_raises_with_unit_name(self):
        _, graph, _ = setup()
        with pytest.raises(ValueError, match="'nosuch'"):
            graph.call_sites("nosuch")

    def test_site_count_spans_all_callers(self):
        _, graph, _ = setup()
        assert graph.site_count("top") == 1
        assert graph.site_count("reader") == 1
        assert graph.site_count("nosuch") == 0


class TestCalleeSummary:
    def test_summary_of_straight_line_callee(self):
        cu, graph, _ = setup()
        s = summarize_callee(graph, "reader")
        assert s.refusal is None
        assert s.unit is cu.unit("reader")
        assert s.leading == []
        assert s.first_nest is not None
        assert s.tail == []
        assert s.call_sites == 1

    def test_external_routine_refused(self):
        _, graph, _ = setup()
        s = summarize_callee(graph, "mpi_barrier")
        assert "external routine" in s.refusal

    def test_recursive_callee_refused(self):
        cu = parse_source(
            "program p\ncall a()\nend\nsubroutine a()\ncall b()\nend\n"
            "subroutine b()\ncall a()\nend\n")
        s = summarize_callee(build_call_graph(cu), "a")
        assert "recursive" in s.refusal

    def test_multi_site_callee_refused(self):
        cu = parse_source(
            "program p\ncall a()\ncall a()\nend\n"
            "subroutine a()\ninteger i\ndo i = 1, 4\nx = i\nend do\nend\n")
        s = summarize_callee(build_call_graph(cu), "a")
        assert "2 static call sites" in s.refusal

    def test_no_nest_refused(self):
        cu = parse_source(
            "program p\ncall a()\nend\nsubroutine a()\nx = 1.0\nend\n")
        s = summarize_callee(build_call_graph(cu), "a")
        assert "no top-level loop nest" in s.refusal
