"""Self-dependent loops and mirror-image decomposition (Figures 3-4)."""

from repro.analysis.field_loops import classify_unit
from repro.analysis.selfdep import (
    DependenceEdge,
    SelfDepClass,
    analyze_self_dependence,
)
from repro.fortran.parser import parse_source

#: Figure 3(a): dependences respect lexicographic order (wavefront-able).
FIG3A = """\
!$acfd status v
!$acfd grid 10 10
program fig3a
  integer i, j
  real v(10, 10)
  do i = 2, 9
    do j = 2, 9
      v(i, j) = v(i - 1, j) + v(i, j - 1)
    end do
  end do
end
"""

#: Figure 3(b): dependences in both orientations (mirror-image needed).
FIG3B = """\
!$acfd status v
!$acfd grid 10 10
program fig3b
  integer i, j
  real v(10, 10)
  do i = 2, 9
    do j = 2, 9
      v(i, j) = v(i - 1, j) + v(i + 1, j) + v(i, j - 1) + v(i, j + 1)
    end do
  end do
end
"""


def plans_of(src: str):
    cu = parse_source(src)
    cls = classify_unit(cu.main, cu.directives)
    fl = cls.field_loops[0]
    return analyze_self_dependence(fl, cu.directives.ndims)


class TestClassification:
    def test_fig3a_wavefront(self):
        plans = plans_of(FIG3A)
        assert len(plans) == 1
        assert plans[0].klass is SelfDepClass.WAVEFRONT

    def test_fig3b_mirror(self):
        plans = plans_of(FIG3B)
        assert plans[0].klass is SelfDepClass.MIRROR

    def test_forward_only_anti_dependence(self):
        plans = plans_of("""\
!$acfd status v
!$acfd grid 10 10
program p
  integer i, j
  real v(10, 10)
  do i = 2, 9
    do j = 2, 9
      v(i, j) = v(i + 1, j) + v(i, j + 1)
    end do
  end do
end
""")
        # reads strictly ahead: old values only; empty pipeline suffices
        assert plans[0].klass is SelfDepClass.WAVEFRONT
        assert plans[0].decomposition.backward == []

    def test_irregular_serial(self):
        plans = plans_of("""\
!$acfd status v
!$acfd grid 10 10
program p
  integer i, j, g(10)
  real v(10, 10)
  do i = 2, 9
    do j = 2, 9
      v(i, j) = v(g(i), j)
    end do
  end do
end
""")
        assert plans[0].klass is SelfDepClass.SERIAL

    def test_zero_offset_not_self_dependent(self):
        plans = plans_of("""\
!$acfd status v
!$acfd grid 10 10
program p
  integer i, j
  real v(10, 10)
  do i = 2, 9
    do j = 2, 9
      v(i, j) = v(i, j) * 0.5
    end do
  end do
end
""")
        assert plans == []


class TestMirrorDecomposition:
    def test_split_by_orientation(self):
        d = plans_of(FIG3B)[0].decomposition
        assert sorted(d.backward) == [(-1, 0), (0, -1)]
        assert sorted(d.forward) == [(0, 1), (1, 0)]

    def test_pipeline_and_halo_dims(self):
        d = plans_of(FIG3B)[0].decomposition
        assert d.pipeline_dims == [0, 1]
        assert d.halo_dims == [0, 1]

    def test_one_direction_pipeline(self):
        d = plans_of("""\
!$acfd status v
!$acfd grid 10 10
program p
  integer i, j
  real v(10, 10)
  do i = 2, 9
    do j = 1, 10
      v(i, j) = v(i - 1, j) + v(i + 1, j)
    end do
  end do
end
""")[0].decomposition
        assert d.pipeline_dims == [0]
        assert d.halo_dims == [0]

    def test_fig4_subgraphs_are_disjoint_and_cover(self):
        """Figure 4: decomposing the dependence graph of a small grid."""
        d = plans_of(FIG3B)[0].decomposition
        extent = (3, 3)
        backward = set(d.subgraph_edges(extent, "backward"))
        forward = set(d.subgraph_edges(extent, "forward"))
        assert backward, "backward subgraph must be non-empty"
        assert forward, "forward subgraph must be non-empty"
        # mirror image: forward edges are backward edges reversed
        assert {(b, a) for a, b in forward} == backward

    def test_subgraph_edges_acyclic_within_orientation(self):
        d = plans_of(FIG3B)[0].decomposition
        edges = d.subgraph_edges((3, 3), "backward")
        # every backward edge goes from lexicographically smaller to larger
        for src, dst in edges:
            assert src < dst


class TestDependenceEdge:
    def test_lexicographic_sign(self):
        assert DependenceEdge((1, 0)).lexicographic_sign == 1
        assert DependenceEdge((-1, 2)).lexicographic_sign == -1
        assert DependenceEdge((0, -1)).lexicographic_sign == -1
        assert DependenceEdge((0, 0)).lexicographic_sign == 0
