"""Convergence-reduction recognition."""

from repro.analysis.field_loops import classify_unit
from repro.analysis.reductions import find_reductions
from repro.fortran.parser import parse_source


def reductions_of(body: str, decls: str = ""):
    src = f"""\
!$acfd status v
!$acfd grid 8 8
program p
  integer i, j
  real v(8, 8), err, s
{decls}{body}end
"""
    cu = parse_source(src)
    cls = classify_unit(cu.main, cu.directives)
    out = []
    for fl in cls.field_loops:
        out.extend(find_reductions(fl))
    return out


class TestRecognition:
    def test_amax1(self):
        reds = reductions_of("""\
  do i = 1, 8
    do j = 1, 8
      err = amax1(err, abs(v(i, j)))
    end do
  end do
""")
        assert [(r.var, r.op) for r in reds] == [("err", "max")]

    def test_min(self):
        reds = reductions_of("""\
  do i = 1, 8
    do j = 1, 8
      err = min(err, v(i, j))
    end do
  end do
""")
        assert reds[0].op == "min"

    def test_sum_both_orders(self):
        reds = reductions_of("""\
  do i = 1, 8
    do j = 1, 8
      s = s + v(i, j)
      err = v(i, j) + err
    end do
  end do
""")
        assert {(r.var, r.op) for r in reds} == {("s", "sum"),
                                                 ("err", "sum")}

    def test_deduplicated(self):
        reds = reductions_of("""\
  do i = 1, 8
    do j = 1, 8
      err = amax1(err, v(i, j))
      err = amax1(err, -v(i, j))
    end do
  end do
""")
        assert len(reds) == 1


class TestRejection:
    def test_not_a_reduction_var_on_both_sides_of_arg(self):
        reds = reductions_of("""\
  do i = 1, 8
    do j = 1, 8
      err = amax1(err, err * 2.0)
    end do
  end do
""")
        assert reds == []

    def test_plain_assignment_not_reduction(self):
        reds = reductions_of("""\
  do i = 1, 8
    do j = 1, 8
      err = abs(v(i, j))
    end do
  end do
""")
        assert reds == []

    def test_array_target_not_reduction(self):
        reds = reductions_of("""\
  do i = 1, 8
    do j = 1, 8
      v(i, j) = v(i, j) + 1.0
    end do
  end do
""")
        assert reds == []

    def test_subtraction_not_reduction(self):
        reds = reductions_of("""\
  do i = 1, 8
    do j = 1, 8
      s = s - v(i, j)
    end do
  end do
""")
        assert reds == []
