"""Loop-nest relations: paper Definitions 6.1-6.4."""

from repro.analysis.loops import build_loop_forest
from repro.fortran.parser import parse_source


def forest_of(body: str):
    src = f"program p\n{body}end\n"
    cu = parse_source(src, resolve=False)
    return build_loop_forest(cu.main)


NESTED = """\
do i = 1, 4
  do j = 1, 4
    do k = 1, 4
      x = 1
    end do
  end do
end do
"""

ADJACENT = """\
do i = 1, 4
  do j = 1, 4
    x = 1
  end do
  do k = 1, 4
    x = 2
  end do
end do
"""


class TestDiscovery:
    def test_all_loops_found(self):
        f = forest_of(NESTED)
        assert [l.var for l in f.all_loops] == ["i", "j", "k"]

    def test_roots(self):
        f = forest_of(ADJACENT)
        assert [l.var for l in f.roots] == ["i"]

    def test_loops_in_if_arms(self):
        f = forest_of("if (a) then\n do i = 1, 2\n end do\nend if\n")
        assert [l.var for l in f.all_loops] == ["i"]
        assert f.all_loops[0].parent is None

    def test_loop_in_logical_if_body(self):
        f = forest_of("do i = 1, 2\n if (a) x = 1\nend do\n")
        assert len(f.all_loops) == 1

    def test_lookup_by_stmt(self):
        f = forest_of(NESTED)
        outer = f.roots[0]
        assert f.lookup(outer.stmt) is outer


class TestDefinition61InnerOuter:
    def test_contains_transitive(self):
        f = forest_of(NESTED)
        i, j, k = f.all_loops
        assert i.contains(j)
        assert i.contains(k)
        assert j.contains(k)
        assert not k.contains(i)
        assert not i.contains(i)


class TestDefinition62Direct:
    def test_direct_outer(self):
        f = forest_of(NESTED)
        i, j, k = f.all_loops
        assert i.is_direct_outer_of(j)
        assert not i.is_direct_outer_of(k)
        assert j.is_direct_outer_of(k)


class TestDefinition63Adjacent:
    def test_siblings_adjacent(self):
        f = forest_of(ADJACENT)
        i = f.roots[0]
        j, k = i.children
        assert j.adjacent_to(k)
        assert k.adjacent_to(j)
        assert not i.adjacent_to(j)

    def test_outermost_loops_adjacent(self):
        f = forest_of("do i = 1, 2\nend do\ndo j = 1, 2\nend do\n")
        a, b = f.roots
        assert a.adjacent_to(b)

    def test_not_adjacent_to_self(self):
        f = forest_of(ADJACENT)
        assert not f.roots[0].adjacent_to(f.roots[0])

    def test_adjacent_pairs_listing(self):
        f = forest_of(ADJACENT)
        pairs = f.adjacent_pairs()
        assert len(pairs) == 1


class TestDefinition64Simple:
    def test_pure_chain_is_simple(self):
        f = forest_of(NESTED)
        assert f.roots[0].is_simple

    def test_adjacent_inside_not_simple(self):
        f = forest_of(ADJACENT)
        assert not f.roots[0].is_simple
        # but the children themselves are simple
        for child in f.roots[0].children:
            assert child.is_simple

    def test_deep_adjacency_breaks_simplicity(self):
        f = forest_of("""\
do a = 1, 2
  do b = 1, 2
    do c = 1, 2
    end do
    do d = 1, 2
    end do
  end do
end do
""")
        assert not f.roots[0].is_simple
        assert not f.roots[0].children[0].is_simple


class TestMisc:
    def test_depth(self):
        f = forest_of(NESTED)
        assert [l.depth for l in f.all_loops] == [0, 1, 2]

    def test_nest_vars(self):
        f = forest_of(NESTED)
        assert f.roots[0].nest_vars == ["i", "j", "k"]

    def test_paths_resolve(self):
        f = forest_of(ADJACENT)
        j = f.roots[0].children[0]
        assert j.path == (("body", 0), ("body", 0))
