"""Subscript pattern analysis and dependency distances."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stencil import (
    SubscriptKind,
    analyze_subscript,
    array_access_patterns,
)
from repro.fortran import ast as A
from repro.fortran.parser import _TokenStream, parse_expression, parse_source
from repro.fortran.tokens import tokenize


def sub(text: str, loop_vars=("i", "j"), invariants=None):
    ts = _TokenStream(tokenize(text), "<t>", 1)
    return analyze_subscript(parse_expression(ts), set(loop_vars),
                             invariants)


class TestClassification:
    def test_plain_induction(self):
        info = sub("i")
        assert info.kind is SubscriptKind.INDUCTION
        assert info.var == "i"
        assert info.offset == 0

    def test_positive_offset(self):
        info = sub("i + 2")
        assert info.offset == 2
        assert info.distance == 2

    def test_negative_offset(self):
        info = sub("i - 1")
        assert info.offset == -1
        assert info.distance == 1

    def test_reversed_form(self):
        info = sub("1 + i")
        assert info.kind is SubscriptKind.INDUCTION
        assert info.offset == 1

    def test_constant_literal(self):
        info = sub("3")
        assert info.kind is SubscriptKind.CONSTANT
        assert info.const == 3

    def test_constant_arith(self):
        info = sub("2 + 3")
        assert info.const == 5

    def test_parameter_invariant(self):
        info = sub("n", invariants={"n": 40})
        assert info.kind is SubscriptKind.CONSTANT
        assert info.const == 40

    def test_invariant_scalar_unknown_value(self):
        info = sub("k0")
        assert info.kind is SubscriptKind.CONSTANT
        assert info.const is None

    def test_invariant_arith(self):
        info = sub("k0 + 1")
        assert info.kind is SubscriptKind.CONSTANT

    def test_strided(self):
        info = sub("2 * i")
        assert info.kind is SubscriptKind.STRIDED
        assert info.coeff == 2
        assert info.distance == 2

    def test_strided_with_offset(self):
        info = sub("2 * i - 1")
        assert info.kind is SubscriptKind.STRIDED
        assert info.distance == 3

    def test_irregular_indirect(self):
        info = sub("g(i)")
        assert info.kind is SubscriptKind.IRREGULAR

    def test_two_vars_irregular(self):
        info = sub("i + j")
        assert info.kind is SubscriptKind.IRREGULAR

    def test_negated_induction(self):
        info = sub("-i + 5")
        assert info.kind is SubscriptKind.STRIDED
        assert info.coeff == -1


@given(off=st.integers(-3, 3), scale=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_property_affine_forms(off, scale):
    sign = "+" if off >= 0 else "-"
    text = f"{scale} * i {sign} {abs(off)}"
    info = sub(text)
    if scale == 1:
        assert info.kind is SubscriptKind.INDUCTION
        assert info.offset == off
    else:
        assert info.kind is SubscriptKind.STRIDED
        assert info.coeff == scale


class TestAccessCollection:
    SRC = """\
program p
  integer i, j, n
  parameter (n = 10)
  real v(n, n), w(n, n)
  do i = 2, n - 1
    do j = 2, n - 1
      v(i, j) = w(i - 1, j) + w(i + 1, j) - v(i, n)
    end do
  end do
end
"""

    def accesses(self):
        cu = parse_source(self.SRC)
        loop = cu.main.body[0]
        return array_access_patterns([loop], {"v", "w"}, {"i", "j"},
                                     {"n": 10})

    def test_writes_and_reads_split(self):
        acc = self.accesses()
        writes = [a for a in acc if a.is_write]
        reads = [a for a in acc if not a.is_write]
        assert len(writes) == 1
        assert writes[0].array == "v"
        assert len(reads) == 3

    def test_offsets(self):
        acc = self.accesses()
        w_reads = sorted((a for a in acc if a.array == "w"),
                         key=lambda a: a.subs[0].offset)
        assert w_reads[0].offset_along(0) == -1
        assert w_reads[1].offset_along(0) == 1

    def test_boundary_read_constant(self):
        acc = self.accesses()
        v_read = [a for a in acc if a.array == "v" and not a.is_write][0]
        assert v_read.subs[1].kind is SubscriptKind.CONSTANT
        assert v_read.subs[1].const == 10

    def test_read_in_if_condition_found(self):
        cu = parse_source("""\
program p
  real v(5)
  integer i
  do i = 1, 5
    if (v(i) .gt. 0.0) then
      x = 1.0
    end if
  end do
end
""")
        acc = array_access_patterns([cu.main.body[0]], {"v"}, {"i"})
        assert len(acc) == 1
        assert not acc[0].is_write

    def test_read_stmt_target_is_write(self):
        cu = parse_source("""\
program p
  real v(5)
  read (5, *) v(1)
end
""")
        acc = array_access_patterns(list(cu.main.body), {"v"}, set())
        assert acc[0].is_write
