"""S_LDP construction: pair kinds, distances, kills, partition filtering."""

from repro.analysis.dependency import build_sldp
from repro.analysis.frame import build_frame_program
from repro.fortran.parser import parse_source


def pairs_of(src: str, eliminate=True):
    frame = build_frame_program(parse_source(src))
    return frame, build_sldp(frame, eliminate_redundant=eliminate)


BASIC = """\
!$acfd status v, w
!$acfd grid 10 10
!$acfd frame it
program p
  integer i, j, it
  real v(10, 10), w(10, 10)
  do it = 1, 5
    do i = 2, 9
      do j = 2, 9
        v(i, j) = float(i)
      end do
    end do
    do i = 2, 9
      do j = 2, 9
        w(i, j) = v(i - 1, j) + v(i + 1, j)
      end do
    end do
  end do
end
"""


class TestForwardPairs:
    def test_forward_pair_found(self):
        _, pairs = pairs_of(BASIC)
        fwd = [p for p in pairs if p.kind == "forward" and p.array == "v"]
        assert len(fwd) == 1
        assert fwd[0].distances[0] == (1, 1)
        assert fwd[0].distances.get(1, (0, 0)) == (0, 0)

    def test_carried_pair_found(self):
        _, pairs = pairs_of(BASIC)
        carried = [p for p in pairs if p.kind == "carried"
                   and p.array == "v" and not p.self_pair]
        # reader (loop 2) textually after writer => the reverse direction
        # (writer after reader) is carried by the frame loop... here the
        # writer IS before the reader, so the carried pair is
        # reader-of-next-frame: none for v besides forward.  w has no
        # readers at all.
        assert carried == []

    def test_no_pair_for_unread_array(self):
        _, pairs = pairs_of(BASIC)
        assert not [p for p in pairs if p.array == "w"]


CARRIED = """\
!$acfd status v
!$acfd grid 10 10
!$acfd frame it
program p
  integer i, j, it
  real v(10, 10)
  do it = 1, 5
    do i = 2, 9
      do j = 2, 9
        x = v(i - 1, j) * 0.5
      end do
    end do
    do i = 2, 9
      do j = 2, 9
        v(i, j) = float(it)
      end do
    end do
  end do
end
"""


class TestCarriedPairs:
    def test_writer_after_reader_is_carried(self):
        frame, pairs = pairs_of(CARRIED)
        assert len(pairs) == 1
        p = pairs[0]
        assert p.kind == "carried"
        assert p.carrier is not None
        assert p.carrier.stmt.var == "it"

    def test_no_common_loop_no_pair(self):
        src = """\
!$acfd status v
!$acfd grid 10 10
program p
  integer i, j
  real v(10, 10)
  do i = 2, 9
    do j = 2, 9
      x = v(i - 1, j)
    end do
  end do
  do i = 2, 9
    do j = 2, 9
      v(i, j) = 1.0
    end do
  end do
end
"""
        _, pairs = pairs_of(src)
        assert pairs == []


SELF = """\
!$acfd status v
!$acfd grid 10 10
!$acfd frame it
program p
  integer i, j, it
  real v(10, 10)
  do it = 1, 5
    do i = 2, 9
      do j = 2, 9
        v(i, j) = v(i - 1, j) + v(i + 1, j)
      end do
    end do
  end do
end
"""


class TestSelfPairs:
    def test_self_pair_flagged(self):
        _, pairs = pairs_of(SELF)
        self_pairs = [p for p in pairs if p.self_pair]
        assert len(self_pairs) == 1
        assert self_pairs[0].kind == "carried"

    def test_self_loop_outside_any_loop_skipped(self):
        src = """\
!$acfd status v
!$acfd grid 10 10
program p
  integer i, j
  real v(10, 10)
  do i = 2, 9
    do j = 2, 9
      v(i, j) = v(i - 1, j)
    end do
  end do
end
"""
        _, pairs = pairs_of(src)
        assert not [p for p in pairs if p.self_pair]


KILL = """\
!$acfd status v
!$acfd grid 10 10
program p
  integer i, j
  real v(10, 10), w(10, 10)
  do i = 1, 10
    do j = 1, 10
      v(i, j) = 1.0
    end do
  end do
  do i = 1, 10
    do j = 1, 10
      v(i, j) = 2.0
    end do
  end do
  do i = 2, 9
    do j = 2, 9
      w(i, j) = v(i - 1, j)
    end do
  end do
end
"""


class TestRedundantElimination:
    def test_killed_pair_removed(self):
        _, pairs = pairs_of(KILL)
        # only the second writer pairs with the reader
        v_pairs = [p for p in pairs if p.array == "v"]
        assert len(v_pairs) == 1
        assert v_pairs[0].writer.open > 0

    def test_disable_elimination(self):
        _, pairs = pairs_of(KILL, eliminate=False)
        assert len([p for p in pairs if p.array == "v"]) == 2

    def test_conditional_writer_does_not_kill(self):
        src = """\
!$acfd status v
!$acfd grid 10 10
program p
  integer i, j
  logical flag
  real v(10, 10), w(10, 10)
  do i = 1, 10
    do j = 1, 10
      v(i, j) = 1.0
    end do
  end do
  if (flag) then
    do i = 1, 10
      do j = 1, 10
        v(i, j) = 2.0
      end do
    end do
  end if
  do i = 2, 9
    do j = 2, 9
      w(i, j) = v(i - 1, j)
    end do
  end do
end
"""
        _, pairs = pairs_of(src)
        assert len([p for p in pairs if p.array == "v"]) == 2

    def test_boundary_writer_does_not_kill(self):
        src = """\
!$acfd status v
!$acfd grid 10 10
program p
  integer i, j
  real v(10, 10), w(10, 10)
  do i = 1, 10
    do j = 1, 10
      v(i, j) = 1.0
    end do
  end do
  do j = 1, 10
    v(1, j) = 0.0
  end do
  do i = 2, 9
    do j = 2, 9
      w(i, j) = v(i - 1, j)
    end do
  end do
end
"""
        _, pairs = pairs_of(src)
        # both the full writer and the boundary writer pair with the reader
        assert len([p for p in pairs if p.array == "v"]) == 2


class TestPartitionFiltering:
    def test_direction_specific_needs(self):
        _, pairs = pairs_of(BASIC)
        pair = [p for p in pairs if p.array == "v"][0]
        assert pair.needs_sync((2, 1))
        assert not pair.needs_sync((1, 2))
        assert pair.needs_sync((2, 2))
        assert not pair.needs_sync((1, 1))

    def test_comm_dims(self):
        _, pairs = pairs_of(BASIC)
        pair = [p for p in pairs if p.array == "v"][0]
        assert pair.comm_dims((2, 2)) == {0}

    def test_irregular_needs_all_cut_dims(self):
        src = """\
!$acfd status v
!$acfd grid 10 10
!$acfd frame it
program p
  integer i, j, it, g(10)
  real v(10, 10), w(10, 10)
  do it = 1, 3
    do i = 1, 10
      do j = 1, 10
        v(i, j) = 1.0
      end do
    end do
    do i = 1, 10
      do j = 1, 10
        w(i, j) = v(g(i), j)
      end do
    end do
  end do
end
"""
        _, pairs = pairs_of(src)
        pair = [p for p in pairs if p.array == "v" and p.kind == "forward"][0]
        assert pair.irregular
        assert pair.comm_dims((2, 2)) == {0, 1}
        assert pair.comm_dims((1, 2)) == {1}
