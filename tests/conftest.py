"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fortran import parse_source


def parse(src: str, **kwargs):
    """Parse helper with resolution on."""
    return parse_source(src, **kwargs)


def parse_main(src: str):
    """Parse and return the main program unit."""
    return parse_source(src).main


JACOBI_SRC = """\
!$acfd status v, vnew
!$acfd grid 24 16
!$acfd frame iter
program jacobi
  implicit none
  integer n, m, i, j, iter
  parameter (n = 24, m = 16)
  real v(n, m), vnew(n, m), err, eps
  eps = 1.0e-4
  do i = 1, n
    do j = 1, m
      v(i, j) = 0.0
    end do
  end do
  do i = 1, n
    v(i, 1) = 1.0
    v(i, m) = 2.0
  end do
  do iter = 1, 120
    err = 0.0
    do i = 2, n - 1
      do j = 2, m - 1
        vnew(i, j) = 0.25 * (v(i-1, j) + v(i+1, j) + v(i, j-1) + v(i, j+1))
        err = amax1(err, abs(vnew(i, j) - v(i, j)))
      end do
    end do
    do i = 2, n - 1
      do j = 2, m - 1
        v(i, j) = vnew(i, j)
      end do
    end do
    if (err .lt. eps) exit
  end do
  write (6, *) iter, err
end program jacobi
"""

SEIDEL_SRC = """\
!$acfd status v
!$acfd grid 20 14
!$acfd frame iter
program seidel
  implicit none
  integer n, m, i, j, iter
  parameter (n = 20, m = 14)
  real v(n, m), err, eps, old
  eps = 1.0e-5
  do i = 1, n
    do j = 1, m
      v(i, j) = 0.0
    end do
  end do
  do j = 1, m
    v(1, j) = 1.0
    v(n, j) = 2.0
  end do
  do iter = 1, 80
    err = 0.0
    do i = 2, n - 1
      do j = 2, m - 1
        old = v(i, j)
        v(i, j) = 0.25 * (v(i-1, j) + v(i+1, j) + v(i, j-1) + v(i, j+1))
        err = amax1(err, abs(v(i, j) - old))
      end do
    end do
    if (err .lt. eps) exit
  end do
  write (6, *) iter, err
end program seidel
"""


@pytest.fixture
def jacobi_cu():
    return parse_source(JACOBI_SRC)


@pytest.fixture
def seidel_cu():
    return parse_source(SEIDEL_SRC)


def arrays_equal(a, b) -> bool:
    """Bitwise equality of two OffsetArrays."""
    return (a.lower == b.lower and a.shape == b.shape
            and np.array_equal(a.data, b.data))
