"""Overlap on/off bitwise equivalence across the whole gallery.

The overlapped split program must be the *same computation* as the
blocking one — interior plus boundary strips tile each nest exactly
once, and ghosts are identical at every read — so final grids compare
equal by raw bytes on every kernel, both rank executors, and both
backends.  Any divergence is a bug in the strip bounds, the liveness
gate, or the nonblocking runtime.
"""

import pytest

from repro.core.pipeline import AutoCFD

from tests.interp.test_executor_equivalence import CASES


def _dims(acfd):
    return (2,) + (1,) * (len(acfd.grid.shape) - 1)


@pytest.mark.parametrize("name,gen", CASES, ids=[n for n, _ in CASES])
def test_overlap_matches_blocking_thread_executor(name, gen):
    acfd = AutoCFD.from_source(gen())
    dims = _dims(acfd)
    blocking = acfd.compile(partition=dims, overlap="off")
    overlapped = acfd.compile(partition=dims, overlap="auto")
    base = blocking.run_parallel(timeout=60.0)
    over = over_vec = overlapped.run_parallel(timeout=60.0)
    over_sca = overlapped.run_parallel(timeout=60.0, vectorize=False)
    assert base.output() == over.output()
    for aname in blocking.plan.arrays:
        want = base.array(aname).data.tobytes()
        assert want == over_vec.array(aname).data.tobytes(), \
            f"{name}: overlap diverges from blocking on {aname!r} (vector)"
        assert want == over_sca.array(aname).data.tobytes(), \
            f"{name}: overlap diverges from blocking on {aname!r} (scalar)"


@pytest.mark.parametrize("name,gen", CASES, ids=[n for n, _ in CASES])
def test_overlap_matches_blocking_process_executor(name, gen):
    acfd = AutoCFD.from_source(gen())
    dims = _dims(acfd)
    blocking = acfd.compile(partition=dims, overlap="off")
    overlapped = acfd.compile(partition=dims, overlap="auto")
    base = blocking.run_parallel(timeout=60.0)
    proc = overlapped.run_parallel(timeout=60.0, executor="process")
    assert base.output() == proc.output()
    for aname in blocking.plan.arrays:
        assert (base.array(aname).data.tobytes()
                == proc.array(aname).data.tobytes()), \
            f"{name}: overlap diverges from blocking on {aname!r} (process)"


def test_gallery_has_at_least_one_overlapped_kernel():
    # the matrix is vacuous if the gate refuses everything: assert some
    # kernels actually take the nonblocking path on a 2x1 cut
    enabled = []
    for name, gen in CASES:
        acfd = AutoCFD.from_source(gen())
        plan = acfd.compile(partition=_dims(acfd)).plan
        if any(d.enabled for d in plan.overlap_decisions):
            enabled.append(name)
    assert "jacobi_5pt" in enabled
    assert "heat_3d" in enabled
