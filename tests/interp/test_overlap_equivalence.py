"""Overlap on/off bitwise equivalence across the whole gallery.

The overlapped split program must be the *same computation* as the
blocking one — interior plus boundary strips tile each nest exactly
once, and ghosts are identical at every read — so final grids compare
equal by raw bytes on every kernel, both rank executors, and both
backends.  Any divergence is a bug in the strip bounds, the liveness
gate, or the nonblocking runtime.
"""

import pytest

from repro.core.pipeline import AutoCFD

from tests.interp.test_executor_equivalence import CASES


def _dims(acfd):
    return (2,) + (1,) * (len(acfd.grid.shape) - 1)


@pytest.mark.parametrize("name,gen", CASES, ids=[n for n, _ in CASES])
def test_overlap_matches_blocking_thread_executor(name, gen):
    acfd = AutoCFD.from_source(gen())
    dims = _dims(acfd)
    blocking = acfd.compile(partition=dims, overlap="off")
    overlapped = acfd.compile(partition=dims, overlap="auto")
    base = blocking.run_parallel(timeout=60.0)
    over = over_vec = overlapped.run_parallel(timeout=60.0)
    over_sca = overlapped.run_parallel(timeout=60.0, vectorize=False)
    assert base.output() == over.output()
    for aname in blocking.plan.arrays:
        want = base.array(aname).data.tobytes()
        assert want == over_vec.array(aname).data.tobytes(), \
            f"{name}: overlap diverges from blocking on {aname!r} (vector)"
        assert want == over_sca.array(aname).data.tobytes(), \
            f"{name}: overlap diverges from blocking on {aname!r} (scalar)"


@pytest.mark.parametrize("name,gen", CASES, ids=[n for n, _ in CASES])
def test_overlap_matches_blocking_process_executor(name, gen):
    acfd = AutoCFD.from_source(gen())
    dims = _dims(acfd)
    blocking = acfd.compile(partition=dims, overlap="off")
    overlapped = acfd.compile(partition=dims, overlap="auto")
    base = blocking.run_parallel(timeout=60.0)
    proc = overlapped.run_parallel(timeout=60.0, executor="process")
    assert base.output() == proc.output()
    for aname in blocking.plan.arrays:
        assert (base.array(aname).data.tobytes()
                == proc.array(aname).data.tobytes()), \
            f"{name}: overlap diverges from blocking on {aname!r} (process)"


def test_gallery_has_at_least_one_overlapped_kernel():
    # the matrix is vacuous if the gate refuses everything: assert some
    # kernels actually take the nonblocking path on a 2x1 cut
    enabled = []
    for name, gen in CASES:
        acfd = AutoCFD.from_source(gen())
        plan = acfd.compile(partition=_dims(acfd)).plan
        if any(d.enabled for d in plan.overlap_decisions):
            enabled.append(name)
    assert "jacobi_5pt" in enabled
    assert "heat_3d" in enabled

# -- interprocedural: stencils behind call boundaries ------------------------------
#
# The paper's own apps keep every stencil in a subroutine, so these
# variants pin the call-site split: the combined sync stays in the main
# program (its ghosts feed two callees) and only the interprocedural
# rewrite — begin / call <callee>_acfd_int / finish / call
# <callee>_acfd_bnd — can overlap it.

from repro.apps import kernels  # noqa: E402

SUB_CASES = [
    ("jacobi_5pt_sub", lambda: kernels.jacobi_5pt_sub(n=12, m=8, iters=6),
     (2, 2)),
    ("jacobi_9pt_sub", lambda: kernels.jacobi_9pt_sub(n=12, m=8, iters=6),
     (2, 2)),
    ("heat_3d_sub", lambda: kernels.heat_3d_sub(n=8, m=6, l=5, iters=4),
     (2, 2, 1)),
]
_SUB_IDS = [n for n, _g, _d in SUB_CASES]


@pytest.mark.parametrize("name,gen,dims", SUB_CASES, ids=_SUB_IDS)
def test_subroutine_stencils_match_blocking_thread_executor(name, gen, dims):
    acfd = AutoCFD.from_source(gen())
    blocking = acfd.compile(partition=dims, overlap="off")
    overlapped = acfd.compile(partition=dims, overlap="auto")
    base = blocking.run_parallel(timeout=60.0)
    over_vec = overlapped.run_parallel(timeout=60.0)
    over_sca = overlapped.run_parallel(timeout=60.0, vectorize=False)
    assert base.output() == over_vec.output()
    for aname in blocking.plan.arrays:
        want = base.array(aname).data.tobytes()
        assert want == over_vec.array(aname).data.tobytes(), \
            f"{name}: overlap diverges from blocking on {aname!r} (vector)"
        assert want == over_sca.array(aname).data.tobytes(), \
            f"{name}: overlap diverges from blocking on {aname!r} (scalar)"


@pytest.mark.parametrize("name,gen,dims", SUB_CASES, ids=_SUB_IDS)
def test_subroutine_stencils_match_blocking_process_executor(name, gen, dims):
    acfd = AutoCFD.from_source(gen())
    blocking = acfd.compile(partition=dims, overlap="off")
    overlapped = acfd.compile(partition=dims, overlap="auto")
    base = blocking.run_parallel(timeout=60.0)
    proc = overlapped.run_parallel(timeout=60.0, executor="process")
    assert base.output() == proc.output()
    for aname in blocking.plan.arrays:
        assert (base.array(aname).data.tobytes()
                == proc.array(aname).data.tobytes()), \
            f"{name}: overlap diverges from blocking on {aname!r} (process)"


def test_subroutine_stencils_take_interprocedural_path():
    # vacuity guard: the matrix above must actually cross call
    # boundaries, not fall back to the intra-unit split
    for name, gen, dims, callee in [
        ("jacobi_5pt_sub",
         lambda: kernels.jacobi_5pt_sub(n=12, m=8, iters=6), (2, 2),
         "relaxx"),
        ("heat_3d_sub",
         lambda: kernels.heat_3d_sub(n=8, m=6, l=5, iters=4), (2, 2, 1),
         "diffx"),
    ]:
        plan = AutoCFD.from_source(gen()).compile(
            partition=dims, overlap="auto").plan
        hits = [d for d in plan.overlap_decisions
                if d.enabled and d.callee == callee]
        assert hits, f"{name}: no interprocedural split through {callee!r}"
    # and the refusal taxonomy crosses the boundary too: the 9-point
    # x-pass reads corners, unsafe on a two-cut partition
    plan = AutoCFD.from_source(
        kernels.jacobi_9pt_sub(n=12, m=8, iters=6)).compile(
        partition=(2, 2), overlap="auto").plan
    dec = next(d for d in plan.overlap_decisions if d.callee == "smooth9x")
    assert not dec.enabled
    assert "diagonal" in dec.reason


def test_paper_apps_overlap_interprocedurally_and_match_blocking():
    # the acceptance criterion: both case studies accept >= 1 sync
    # across a call boundary and stay bitwise-identical to blocking on
    # both executors
    from repro.apps.aerofoil import AEROFOIL_INPUT, aerofoil_source
    from repro.apps.sprayer import sprayer_source
    for label, src, dims, inp in [
        ("sprayer", sprayer_source(n=32, m=16, iters=4, stages=2),
         (2, 2), "2.5 8\n"),
        ("aerofoil", aerofoil_source(nx=21, ny=9, nz=7, iters=3,
                                     stages=2, blayer_passes=1),
         (2, 2, 1), AEROFOIL_INPUT),
    ]:
        acfd = AutoCFD.from_source(src)
        overlapped = acfd.compile(partition=dims, overlap="auto")
        accepted = [d for d in overlapped.plan.overlap_decisions
                    if d.enabled]
        assert accepted, f"{label}: every sync refused"
        assert any(d.callee for d in accepted), \
            f"{label}: no sync crossed a call boundary"
        blocking = acfd.compile(partition=dims, overlap="off")
        for executor in ("thread", "process"):
            base = blocking.run_parallel(input_text=inp, timeout=120.0,
                                         executor=executor)
            over = overlapped.run_parallel(input_text=inp, timeout=120.0,
                                           executor=executor)
            for aname in blocking.plan.arrays:
                assert (base.array(aname).data.tobytes()
                        == over.array(aname).data.tobytes()), \
                    f"{label}/{executor}: diverges on {aname!r}"
