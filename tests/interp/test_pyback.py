"""Fast backend: cross-checked against the reference interpreter.

Every program run by both executors must produce identical I/O output and
bitwise-identical arrays — including a hypothesis-generated family of
random stencil kernels.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fortran.parser import parse_source
from repro.interp.interpreter import Interpreter
from repro.interp.io_runtime import IoManager
from repro.interp.pyback import compile_unit, run_compiled

from tests.conftest import JACOBI_SRC, SEIDEL_SRC


def both(src: str, inputs: str | None = None):
    """Run via interpreter and pyback; return (interp, result)."""
    io1 = IoManager()
    io2 = IoManager()
    if inputs:
        io1.provide_input(5, inputs)
        io2.provide_input(5, inputs)
    interp = Interpreter(parse_source(src), io=io1)
    interp.run()
    result = run_compiled(parse_source(src), io=io2)
    assert interp.io.output() == result.io.output(), \
        f"output mismatch:\n interp: {interp.io.output()!r}\n" \
        f" pyback: {result.io.output()!r}"
    return interp, result


class TestAgreement:
    def test_jacobi(self):
        interp, result = both(JACOBI_SRC)
        assert np.array_equal(interp.array("v").data,
                              result.array("v").data)

    def test_seidel(self):
        interp, result = both(SEIDEL_SRC)
        assert np.array_equal(interp.array("v").data,
                              result.array("v").data)

    def test_goto_heavy(self):
        both("""\
program p
  integer k, s
  s = 0
  k = 0
10 continue
  k = k + 1
  if (k .eq. 3) goto 20
  s = s + k
  goto 10
20 continue
  write (6, *) s, k
end
""")

    def test_procedures_and_common(self):
        both("""\
program p
  common /acc/ total
  real total, f
  integer i
  total = 0.0
  do i = 1, 4
    call add(float(i))
  end do
  total = total + f(2.0)
  write (6, *) total
end
subroutine add(x)
  common /acc/ total
  real total, x
  total = total + x
end
real function f(y)
  real y
  f = y * 10.0
end
""")

    def test_exit_cycle_inside_goto_region(self):
        # EXIT must leave the DO loop even when a GOTO dispatch loop wraps
        # the body (regression guard for the _ExitLoop translation)
        both("""\
program p
  integer i, s
  s = 0
  do i = 1, 10
    if (i .eq. 2) goto 30
    s = s + 100
30  continue
    if (i .ge. 4) exit
    s = s + 1
  end do
  write (6, *) s, i
end
""")

    def test_do_variable_after_loop(self):
        both("""\
program p
  integer i
  do i = 1, 7, 2
  end do
  write (6, *) i
end
""")

    def test_implied_do_io(self):
        both("""\
program p
  integer i, j
  real v(2, 3)
  do i = 1, 2
    do j = 1, 3
      v(i, j) = float(i * 10 + j)
    end do
  end do
  write (6, *) ((v(i, j), j = 1, 3), i = 1, 2)
end
""")

    def test_read_roundtrip(self):
        both("""\
program p
  real a, b
  read (5, *) a, b
  write (6, *) a + b
end
""", inputs="2.5 3.5")

    def test_data_statements(self):
        both("""\
program p
  real x, v(3)
  integer k
  data x, k / 1.5, 7 /
  data v / 3*2.0 /
  write (6, *) x, k, v(1), v(3)
end
""")

    def test_integer_semantics(self):
        both("""\
program p
  integer a, b, c
  a = 7
  b = -2
  c = a / b + mod(a, 3) * isign(2, b)
  write (6, *) c
end
""")

    def test_stop_in_subroutine(self):
        both("""\
program p
  write (6, *) 'start'
  call bail()
  write (6, *) 'unreachable'
end
subroutine bail()
  write (6, *) 'bailing'
  stop
end
""")


class TestCompiledProgramApi:
    def test_source_available(self):
        compiled = compile_unit(parse_source(JACOBI_SRC))
        assert "def u_jacobi" in compiled.source

    def test_scalar_access(self):
        result = run_compiled(parse_source(
            "program p\ninteger k\nk = 5\nend\n"))
        assert result.scalar("k") == 5

    def test_named_unit_run(self):
        compiled = compile_unit(parse_source(
            "program p\nend\nsubroutine s(k)\ninteger k\nk = k * 2\nend\n"))
        res = compiled.function("s")(compiled.make_ctx(), 21)
        assert res == (42,)


# --- property: random stencil kernels agree between executors -----------------

@st.composite
def kernel_program(draw):
    n = draw(st.integers(4, 8))
    m = draw(st.integers(4, 8))
    coeff = draw(st.sampled_from(["0.25", "0.2", "0.125"]))
    di = draw(st.sampled_from(["i-1", "i+1", "i"]))
    dj = draw(st.sampled_from(["j-1", "j+1", "j"]))
    iters = draw(st.integers(1, 4))
    inplace = draw(st.booleans())
    target = "v" if inplace else "w"
    return f"""\
program k
  integer n, m, i, j, it
  parameter (n = {n}, m = {m})
  real v(n, m), w(n, m)
  do i = 1, n
    do j = 1, m
      v(i, j) = float(i) * 0.5 + float(j) * 0.25
      w(i, j) = 0.0
    end do
  end do
  do it = 1, {iters}
    do i = 2, n - 1
      do j = 2, m - 1
        {target}(i, j) = {coeff} * (v({di}, j) + v(i, {dj})) + 0.1
      end do
    end do
  end do
  write (6, *) v(2, 2), w(2, 2), v(n-1, m-1), w(n-1, m-1)
end
"""


@given(kernel_program())
@settings(max_examples=25, deadline=None)
def test_property_random_kernels_agree(src):
    interp, result = both(src)
    assert np.array_equal(interp.array("v").data, result.array("v").data)
    assert np.array_equal(interp.array("w").data, result.array("w").data)
