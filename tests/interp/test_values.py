"""OffsetArray semantics: Fortran bounds, sections, equality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterpError
from repro.interp.values import OffsetArray, coerce_assign, fortran_div


class TestConstruction:
    def test_default_lower_bound_one(self):
        a = OffsetArray((3, 4))
        assert a.lower == (1, 1)
        assert a.upper == (3, 4)

    def test_from_bounds(self):
        a = OffsetArray.from_bounds([(0, 5), (-2, 2)])
        assert a.shape == (6, 5)
        assert a.lower == (0, -2)
        assert a.bounds == [(0, 5), (-2, 2)]

    def test_wrap_no_copy(self):
        data = np.zeros((2, 2))
        a = OffsetArray.wrap(data, (1, 1))
        data[0, 0] = 7.0
        assert a.get(1, 1) == 7.0

    def test_rank_mismatch(self):
        with pytest.raises(InterpError):
            OffsetArray((3,), (1, 1))

    def test_negative_extent(self):
        with pytest.raises(InterpError):
            OffsetArray((-1,))


class TestElementAccess:
    def test_get_set(self):
        a = OffsetArray.from_bounds([(0, 3)])
        a.set(5.0, 0)
        a.set(7.0, 3)
        assert a.get(0) == 5.0
        assert a.get(3) == 7.0

    def test_bounds_check_low(self):
        a = OffsetArray.from_bounds([(2, 5)])
        with pytest.raises(InterpError):
            a.get(1)

    def test_bounds_check_high(self):
        a = OffsetArray.from_bounds([(2, 5)])
        with pytest.raises(InterpError):
            a.set(0.0, 6)

    def test_wrong_subscript_count(self):
        a = OffsetArray((3, 3))
        with pytest.raises(InterpError):
            a.get(1)

    def test_integer_array_returns_int(self):
        a = OffsetArray((2,), dtype=np.int64)
        a.set(3, 1)
        assert isinstance(a.get(1), int)

    def test_logical_array_returns_bool(self):
        a = OffsetArray((2,), dtype=np.bool_)
        a.set(True, 2)
        assert a.get(2) is True


class TestSections:
    def test_section_view(self):
        a = OffsetArray.from_bounds([(1, 4), (1, 3)])
        a.data[...] = np.arange(12).reshape(4, 3)
        sec = a.section([(2, 3), (1, 3)])
        assert sec.shape == (2, 3)
        assert np.array_equal(sec, a.data[1:3, :])

    def test_section_is_view(self):
        a = OffsetArray.from_bounds([(1, 4)])
        sec = a.section([(2, 3)])
        sec[...] = 9.0
        assert a.get(2) == 9.0

    def test_set_section(self):
        a = OffsetArray.from_bounds([(0, 5)])
        a.set_section([(1, 3)], np.array([1.0, 2.0, 3.0]))
        assert a.get(2) == 2.0

    def test_section_out_of_bounds(self):
        a = OffsetArray.from_bounds([(1, 4)])
        with pytest.raises(InterpError):
            a.section([(0, 2)])

    def test_section_inverted_range(self):
        a = OffsetArray.from_bounds([(1, 4)])
        with pytest.raises(InterpError):
            a.section([(3, 2)])


class TestEqualityAndCopy:
    def test_equality(self):
        a = OffsetArray.from_bounds([(0, 2)])
        b = OffsetArray.from_bounds([(0, 2)])
        assert a == b
        b.set(1.0, 1)
        assert a != b

    def test_lower_bound_matters(self):
        a = OffsetArray((3,), (0,))
        b = OffsetArray((3,), (1,))
        assert a != b

    def test_copy_independent(self):
        a = OffsetArray((2,))
        c = a.copy()
        c.set(5.0, 1)
        assert a.get(1) == 0.0


class TestHelpers:
    def test_coerce_assign(self):
        assert coerce_assign("integer", 3.9) == 3
        assert coerce_assign("integer", -3.9) == -3
        assert coerce_assign("real", 3) == 3.0
        assert isinstance(coerce_assign("real", 3), float)
        assert coerce_assign("logical", 1) is True

    def test_fortran_div_truncates_toward_zero(self):
        assert fortran_div(7, 2) == 3
        assert fortran_div(-7, 2) == -3
        assert fortran_div(7, -2) == -3
        assert fortran_div(-7, -2) == 3

    def test_fortran_div_real(self):
        assert fortran_div(7.0, 2) == 3.5

    def test_fortran_div_zero(self):
        with pytest.raises(InterpError):
            fortran_div(1, 0)


@given(lo=st.integers(-5, 5), n=st.integers(1, 8),
       idx=st.integers(0, 7))
@settings(max_examples=60, deadline=None)
def test_property_offset_indexing(lo, n, idx):
    """Element (lo + k) of an array with lower bound lo is data[k]."""
    a = OffsetArray.from_bounds([(lo, lo + n - 1)])
    k = idx % n
    a.set(float(k + 1), lo + k)
    assert a.data[k] == k + 1
    assert a.get(lo + k) == k + 1


@given(lo=st.integers(-4, 4), n=st.integers(2, 8))
@settings(max_examples=40, deadline=None)
def test_property_full_section_roundtrip(lo, n):
    a = OffsetArray.from_bounds([(lo, lo + n - 1)])
    values = np.arange(n, dtype=float)
    a.set_section([(lo, lo + n - 1)], values)
    assert np.array_equal(a.section([(lo, lo + n - 1)]), values)
