"""Vectorizing translation: which nests it takes, which it refuses.

The vectorizer may only fire on nests whose whole-slice execution is
provably bitwise-identical to the scalar order, so the tests here check
both directions: dependence-free stencils (including parity-masked
red-black and constant-subscript boundary loops) vectorize, while
loop-carried sweeps like Gauss-Seidel fall back with a recorded reason —
and every accepted nest still produces bitwise-identical results.
"""

import numpy as np

from repro.apps import kernels
from repro.fortran.parser import parse_source
from repro.interp.pyback import compile_unit, run_compiled
from repro.interp.values import OffsetArray
from repro.interp.vectorize import survey


def _both(src: str, inputs: str | None = None):
    """Run scalar and vectorized backends; compare output, return both."""
    from repro.interp.io_runtime import IoManager
    ios = [IoManager(), IoManager()]
    if inputs:
        for io in ios:
            io.provide_input(5, inputs)
    scalar = run_compiled(parse_source(src), io=ios[0], vectorize=False)
    vector = run_compiled(parse_source(src), io=ios[1], vectorize=True)
    assert scalar.io.output() == vector.io.output()
    return scalar, vector


def _assert_same_state(scalar, vector):
    assert set(scalar.values) == set(vector.values)
    for name, sv in scalar.values.items():
        vv = vector.values[name]
        if isinstance(sv, OffsetArray):
            assert sv.data.tobytes() == vv.data.tobytes(), name
        elif isinstance(sv, float) or isinstance(sv, np.floating):
            assert np.float64(sv).tobytes() == np.float64(vv).tobytes(), name
        else:
            assert sv == vv, name


class TestAccepts:
    def test_jacobi_nests_vectorize(self):
        cu = parse_source(kernels.jacobi_5pt(n=12, m=8, iters=4))
        compiled = compile_unit(cu, vectorize=True)
        stats = compiled.vector_stats
        # init nest, two boundary loops, update nest, copy-back nest
        assert stats["vectorized"] >= 5
        # only the frame loop (multi-statement body) stays scalar
        assert stats["fallback"] <= 1

    def test_constant_subscript_boundary_loop(self):
        # v(1, j) and v(n, j) with n a PARAMETER: provably disjoint rows.
        src = """\
program bnd
  implicit none
  integer j, n, m
  parameter (n = 8, m = 6)
  real v(n, m)
  do j = 1, m
    v(1, j) = 0.5
    v(n, j) = 1.5
    v(n - 1, j) = 2.5
  end do
  write (6, *) v(1, 1), v(n, 1)
end
"""
        vec, fallback, reasons = survey(parse_source(src))
        assert (vec, fallback) == (1, 0), reasons

    def test_redblack_parity_masks(self):
        cu = parse_source(kernels.redblack_2d(n=10, m=8, iters=4))
        compiled = compile_unit(cu, vectorize=True)
        assert compiled.vector_stats["vectorized"] >= 2
        reasons = [r for _, _, r in compiled.vector_stats["reasons"]]
        assert not any("parity" in r for r in reasons)


class TestRefuses:
    def test_gauss_seidel_sweep_falls_back(self):
        cu = parse_source(kernels.gauss_seidel_2d(n=10, m=8, iters=4))
        vec, fallback, reasons = survey(cu)
        assert fallback >= 1
        texts = [r for _, _, r in reasons]
        assert any("loop-carried" in r or "overlap" in r for r in texts), \
            texts
        # the init / boundary nests around the sweep still vectorize
        assert vec >= 2

    def test_float_sum_reduction_falls_back(self):
        # np.sum is pairwise; the scalar left fold is not — must refuse.
        src = """\
program fsum
  implicit none
  integer i
  real a(100), s
  do i = 1, 100
    a(i) = 1.0 / i
  end do
  s = 0.0
  do i = 1, 100
    s = s + a(i)
  end do
  write (6, *) s
end
"""
        vec, fallback, reasons = survey(parse_source(src))
        assert fallback == 1 and vec == 1
        assert any("sum" in r for _, _, r in reasons)


class TestSemantics:
    def test_zero_trip_loop_leaves_state_scalar_identical(self):
        # DO with zero iterations: body untouched, loop var still set to
        # the first untaken value (start + 0 * step).
        src = """\
program zt
  implicit none
  integer i, s
  real a(5)
  s = 7
  a(3) = 9.0
  do i = 5, 1
    a(i) = 1.0
    s = i
  end do
  write (6, *) s, i
end
"""
        scalar, vector = _both(src)
        _assert_same_state(scalar, vector)
        assert vector.scalar("s") == 7
        assert vector.scalar("i") == 5

    def test_loop_temp_final_value(self):
        # 'old' is a loop-local temp; after the nest it must hold the
        # value from the last iteration, exactly as the scalar order.
        src = """\
program tmp
  implicit none
  integer i
  real a(8), b(8), old
  do i = 1, 8
    a(i) = i * 1.5
    b(i) = 0.0
  end do
  do i = 2, 7
    old = a(i)
    a(i) = old * 2.0
    b(i) = old
  end do
  write (6, *) old
end
"""
        scalar, vector = _both(src)
        _assert_same_state(scalar, vector)
        assert float(vector.scalar("old")) == 7 * 1.5

    def test_int_and_minmax_reductions_vectorize(self):
        # integer sums and max/min folds are exact; float sums are not.
        src = """\
program red
  implicit none
  integer i, ksum
  real a(50), peak
  do i = 1, 50
    a(i) = abs(25.0 - i)
  end do
  ksum = 0
  peak = 0.0
  do i = 1, 50
    ksum = ksum + i
    peak = amax1(peak, a(i))
  end do
  write (6, *) ksum, peak
end
"""
        vec, fallback, reasons = survey(parse_source(src))
        assert (vec, fallback) == (2, 0), reasons
        scalar, vector = _both(src)
        _assert_same_state(scalar, vector)

    def test_report_counts_flow_to_compiled_program(self):
        cu = parse_source(kernels.jacobi_5pt(n=10, m=8, iters=3))
        stats = compile_unit(cu, vectorize=True).vector_stats
        svec, sfall, _ = survey(cu)
        assert stats["vectorized"] == svec
        assert stats["fallback"] == sfall
