"""Every gallery kernel through all the executors, compared bitwise.

The reference interpreter, the scalar numpy backend, and the vectorizing
backend are three independent executions of the same Fortran semantics;
any divergence in final field arrays or program output is a bug in one
of them.  Grids are compared by raw bytes — not approximate equality —
because the vectorizer's contract is bitwise identity.

The same contract extends across *rank executors*: the parallel run on
in-process threads and on one-OS-process-per-rank workers must produce
bitwise-identical stitched grids, even though the process executor
pickles payloads (or ships them through shared memory) instead of
handing references across threads.
"""

import pytest

from repro.apps import kernels
from repro.core.pipeline import AutoCFD
from repro.fortran.parser import parse_source
from repro.interp.interpreter import Interpreter
from repro.interp.io_runtime import IoManager
from repro.interp.pyback import run_compiled
from repro.interp.values import OffsetArray

#: every kernel in the gallery, shrunk so the interpreter stays fast
CASES = [
    ("jacobi_5pt", lambda: kernels.jacobi_5pt(n=12, m=8, iters=6)),
    ("jacobi_9pt", lambda: kernels.jacobi_9pt(n=12, m=8, iters=6)),
    ("gauss_seidel_2d", lambda: kernels.gauss_seidel_2d(n=10, m=8, iters=6)),
    ("sor_2d", lambda: kernels.sor_2d(n=10, m=8, iters=6)),
    ("redblack_2d", lambda: kernels.redblack_2d(n=10, m=8, iters=6)),
    ("line_sweep_x", lambda: kernels.line_sweep_x(n=12, m=8, iters=6)),
    ("heat_3d", lambda: kernels.heat_3d(n=8, m=6, l=5, iters=4)),
    ("wide_stencil_2d", lambda: kernels.wide_stencil_2d(n=12, m=8, iters=4)),
    ("packed_states_2d", lambda: kernels.packed_states_2d(n=10, m=8,
                                                          iters=4)),
]


def _arrays(values: dict) -> dict[str, OffsetArray]:
    return {k: v for k, v in values.items() if isinstance(v, OffsetArray)}


@pytest.mark.parametrize("name,gen", CASES, ids=[n for n, _ in CASES])
def test_three_executors_agree(name, gen):
    src = gen()

    interp = Interpreter(parse_source(src), io=IoManager())
    scope = interp.run()
    scalar = run_compiled(parse_source(src), io=IoManager(), vectorize=False)
    vector = run_compiled(parse_source(src), io=IoManager(), vectorize=True)

    assert interp.io.output() == scalar.io.output() == vector.io.output()

    i_arrays = _arrays(scope.values)
    s_arrays = _arrays(scalar.values)
    v_arrays = _arrays(vector.values)
    assert set(i_arrays) == set(s_arrays) == set(v_arrays)
    assert i_arrays, "kernel must expose at least one field array"
    for aname, ref in i_arrays.items():
        assert ref.data.tobytes() == s_arrays[aname].data.tobytes(), \
            f"{name}: interpreter vs scalar backend differ on {aname!r}"
        assert ref.data.tobytes() == v_arrays[aname].data.tobytes(), \
            f"{name}: interpreter vs vectorized backend differ on {aname!r}"


@pytest.mark.parametrize("name,gen", CASES, ids=[n for n, _ in CASES])
def test_thread_and_process_executors_agree(name, gen):
    # the parallel run itself, on both rank executors: the process
    # executor crosses a pickle/shared-memory boundary on every halo
    # exchange, so this catches any serialization-induced divergence
    acfd = AutoCFD.from_source(gen())
    dims = (2,) + (1,) * (len(acfd.grid.shape) - 1)
    compiled = acfd.compile(partition=dims)
    thread = compiled.run_parallel(timeout=60.0)
    proc = compiled.run_parallel(timeout=60.0, executor="process")
    assert thread.output() == proc.output()
    assert compiled.plan.arrays, "kernel must expose a status array"
    for aname in compiled.plan.arrays:
        assert (thread.array(aname).data.tobytes()
                == proc.array(aname).data.tobytes()), \
            f"{name}: thread vs process executor differ on {aname!r}"
