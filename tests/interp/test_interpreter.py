"""Reference interpreter semantics."""

import pytest

from repro.errors import InterpError
from repro.fortran.parser import parse_source
from repro.interp.interpreter import Interpreter
from repro.interp.io_runtime import IoManager


def run(src: str, inputs: str | None = None, max_steps: int = 2_000_000):
    io = IoManager()
    if inputs is not None:
        io.provide_input(5, inputs)
    interp = Interpreter(parse_source(src), io=io, max_steps=max_steps)
    scope = interp.run()
    return interp, scope


def out(src: str, inputs: str | None = None) -> str:
    interp, _ = run(src, inputs)
    return interp.io.output()


class TestArithmetic:
    def test_integer_division(self):
        assert out("program p\ninteger k\nk = 7 / 2\nwrite (6,*) k\nend\n") \
            == "3"

    def test_negative_integer_division(self):
        assert out("program p\ninteger k\nk = (-7) / 2\nwrite (6,*) k\nend\n") \
            == "-3"

    def test_mixed_division_is_real(self):
        assert out("program p\nreal x\nx = 7 / 2.0\nwrite (6,*) x\nend\n") \
            == "3.5"

    def test_assignment_truncation(self):
        assert out("program p\ninteger k\nk = 3.9\nwrite (6,*) k\nend\n") \
            == "3"

    def test_power(self):
        assert out("program p\nwrite (6,*) 2 ** 10\nend\n") == "1024"

    def test_relational_and_logical(self):
        src = """program p
logical b
b = 1 .lt. 2 .and. .not. (3 .eq. 4)
write (6,*) b
end
"""
        assert out(src) == "T"


class TestDoLoops:
    def test_trip_count(self):
        src = """program p
integer i, c
c = 0
do i = 1, 10
  c = c + 1
end do
write (6,*) c, i
end
"""
        # DO variable ends one past the last value
        assert out(src) == "10 11"

    def test_zero_trip(self):
        src = """program p
integer i, c
c = 0
do i = 5, 1
  c = c + 1
end do
write (6,*) c
end
"""
        assert out(src) == "0"

    def test_negative_step(self):
        src = """program p
integer i, s
s = 0
do i = 10, 1, -3
  s = s + i
end do
write (6,*) s
end
"""
        assert out(src) == "22"  # 10 + 7 + 4 + 1

    def test_exit_and_cycle(self):
        src = """program p
integer i, s
s = 0
do i = 1, 10
  if (i .eq. 3) cycle
  if (i .gt. 5) exit
  s = s + i
end do
write (6,*) s
end
"""
        assert out(src) == "12"  # 1+2+4+5

    def test_do_while(self):
        src = """program p
integer k
k = 1
do while (k .lt. 100)
  k = k * 2
end do
write (6,*) k
end
"""
        assert out(src) == "128"

    def test_zero_step_raises(self):
        with pytest.raises(InterpError):
            run("program p\ninteger i\ndo i = 1, 2, 0\nend do\nend\n")


class TestGoto:
    def test_forward_goto(self):
        src = """program p
x = 1.0
goto 10
x = 2.0
10 continue
write (6,*) x
end
"""
        assert out(src) == "1"

    def test_backward_goto_loop(self):
        src = """program p
integer k
k = 0
10 continue
k = k + 1
if (k .lt. 5) goto 10
write (6,*) k
end
"""
        assert out(src) == "5"

    def test_goto_out_of_loop(self):
        src = """program p
integer i
do i = 1, 100
  if (i .eq. 7) goto 99
end do
99 continue
write (6,*) i
end
"""
        assert out(src) == "7"

    def test_computed_goto(self):
        src = """program p
integer k
k = 2
goto (10, 20, 30), k
10 continue
write (6,*) 'ten'
goto 99
20 continue
write (6,*) 'twenty'
goto 99
30 continue
write (6,*) 'thirty'
99 continue
end
"""
        assert out(src) == "twenty"

    def test_computed_goto_out_of_range_falls_through(self):
        src = """program p
integer k
k = 9
goto (10), k
write (6,*) 'fell'
goto 99
10 continue
write (6,*) 'ten'
99 continue
end
"""
        assert out(src) == "fell"

    def test_unknown_label_raises(self):
        with pytest.raises(Exception):
            run("program p\ngoto 42\nend\n")


class TestProcedures:
    def test_subroutine_scalar_writeback(self):
        src = """program p
integer n
n = 1
call bump(n)
write (6,*) n
end
subroutine bump(k)
integer k
k = k + 10
end
"""
        assert out(src) == "11"

    def test_array_aliasing(self):
        src = """program p
real v(3)
integer i
do i = 1, 3
  v(i) = 0.0
end do
call fill(v)
write (6,*) v(1), v(3)
end
subroutine fill(w)
real w(3)
w(1) = 1.5
w(3) = 2.5
end
"""
        assert out(src) == "1.5 2.5"

    def test_array_element_actual_copyout(self):
        src = """program p
real v(3)
v(2) = 1.0
call bump(v(2))
write (6,*) v(2)
end
subroutine bump(x)
real x
x = x + 1.0
end
"""
        assert out(src) == "2"

    def test_function_result(self):
        src = """program p
real area, f
area = f(3.0)
write (6,*) area
end
real function f(x)
real x
f = x * x
end
"""
        assert out(src) == "9"

    def test_function_integer_implicit(self):
        src = """program p
integer k, next
k = next(4)
write (6,*) k
end
function next(i)
integer next, i
next = i + 1
end
"""
        assert out(src) == "5"

    def test_adjustable_array(self):
        src = """program p
real v(6)
integer i
do i = 1, 6
  v(i) = float(i)
end do
call total(v, 6)
end
subroutine total(w, n)
integer n, i
real w(n), s
s = 0.0
do i = 1, n
  s = s + w(i)
end do
write (6,*) s
end
"""
        assert out(src) == "21"

    def test_return_statement(self):
        src = """program p
integer k
k = 0
call maybe(k)
write (6,*) k
end
subroutine maybe(k)
integer k
k = 1
return
k = 2
end
"""
        assert out(src) == "1"

    def test_recursion_via_missing_sub_raises(self):
        with pytest.raises(InterpError):
            run("program p\ncall nothere()\nend\n")


class TestCommonAndData:
    def test_common_shared_between_units(self):
        src = """program p
common /st/ total, count
real total
integer count
total = 0.0
count = 0
call add(2.5)
call add(1.5)
write (6,*) total, count
end
subroutine add(x)
common /st/ total, count
real total, x
integer count
total = total + x
count = count + 1
end
"""
        assert out(src) == "4 2"

    def test_common_array(self):
        src = """program p
common /g/ v(4)
real v
call setit()
write (6,*) v(2)
end
subroutine setit()
common /g/ v(4)
real v
v(2) = 42.0
end
"""
        assert out(src) == "42"

    def test_data_initialization(self):
        src = """program p
real x, v(3)
data x / 2.5 /
data v / 1.0, 2.0, 3.0 /
write (6,*) x, v(2)
end
"""
        assert out(src) == "2.5 2"

    def test_data_fill(self):
        src = """program p
real v(4)
data v / 7.0 /
write (6,*) v(1), v(4)
end
"""
        assert out(src) == "7 7"


class TestIoAndStop:
    def test_read_values(self):
        assert out("program p\nreal x\ninteger k\nread (5,*) x, k\n"
                   "write (6,*) x * 2.0, k + 1\nend\n",
                   inputs="1.5 10") == "3 11"

    def test_implied_do_write(self):
        src = """program p
integer i
real v(3)
do i = 1, 3
  v(i) = float(i)
end do
write (6,*) (v(i), i = 1, 3)
end
"""
        assert out(src) == "1 2 3"

    def test_stop_ends_program(self):
        src = """program p
write (6,*) 'before'
stop
write (6,*) 'after'
end
"""
        assert out(src) == "before"

    def test_budget_guard(self):
        src = """program p
integer k
k = 0
10 continue
k = k + 1
goto 10
end
"""
        with pytest.raises(InterpError):
            run(src, max_steps=10_000)

    def test_read_past_end_raises(self):
        with pytest.raises(InterpError):
            run("program p\nreal x\nread (5,*) x\nend\n")
