"""IoManager unit behavior."""

import pytest

from repro.errors import InterpError
from repro.interp.io_runtime import IoManager


class TestInput:
    def test_whitespace_tokens(self):
        io = IoManager()
        io.provide_input(5, "1 2.5\n  3e2  ")
        assert io.read_value(5) == 1
        assert io.read_value(5) == 2.5
        assert io.read_value(5) == 300.0

    def test_d_exponent(self):
        io = IoManager()
        io.provide_input(5, "1.5d2")
        assert io.read_value(5) == 150.0

    def test_negative_numbers(self):
        io = IoManager()
        io.provide_input(5, "-3 -2.5")
        assert io.read_value(5) == -3
        assert io.read_value(5) == -2.5

    def test_provide_values(self):
        io = IoManager()
        io.provide_values(9, [1, 2.5])
        assert io.read_value(9) == 1
        assert io.read_value(9) == 2.5

    def test_exhaustion(self):
        io = IoManager()
        io.provide_input(5, "1")
        io.read_value(5)
        with pytest.raises(InterpError):
            io.read_value(5)

    def test_bad_token(self):
        io = IoManager()
        io.provide_input(5, "abc")
        with pytest.raises(InterpError):
            io.read_value(5)

    def test_units_independent(self):
        io = IoManager()
        io.provide_input(5, "1")
        io.provide_input(7, "2")
        assert io.read_value(7) == 2
        assert io.remaining_input(5) == 1


class TestOutput:
    def test_write_and_read_back(self):
        io = IoManager()
        io.write_line(6, ["x", 1, 2.5])
        io.write_line(6, [True])
        assert io.output(6) == "x 1 2.5\nT"
        assert io.output_lines(6) == ["x 1 2.5", "T"]

    def test_float_formatting(self):
        io = IoManager()
        io.write_line(6, [1.0, 0.000123456789, 3.14159265358979])
        assert io.output(6) == "1 0.000123457 3.14159"

    def test_bool_rendering(self):
        io = IoManager()
        io.write_line(6, [True, False])
        assert io.output(6) == "T F"

    def test_units_separate(self):
        io = IoManager()
        io.write_line(6, ["six"])
        io.write_line(9, ["nine"])
        assert io.output(6) == "six"
        assert io.output(9) == "nine"

    def test_empty_output(self):
        assert IoManager().output(6) == ""


class TestOpenClose:
    def test_open_initializes(self):
        io = IoManager()
        io.open(9, "data.txt")
        assert io.remaining_input(9) == 0
        io.close(9)
        # closing twice is harmless
        io.close(9)
