"""Intrinsic function semantics."""

import math

import pytest

from repro.errors import InterpError
from repro.interp.intrinsics import call_intrinsic


class TestNumeric:
    def test_abs_family(self):
        assert call_intrinsic("abs", [-2.5]) == 2.5
        assert call_intrinsic("iabs", [-3]) == 3
        assert call_intrinsic("dabs", [-1.0]) == 1.0

    def test_sqrt_exp_log(self):
        assert call_intrinsic("sqrt", [9.0]) == 3.0
        assert call_intrinsic("exp", [0.0]) == 1.0
        assert call_intrinsic("alog", [math.e]) == pytest.approx(1.0)
        assert call_intrinsic("log10", [100.0]) == pytest.approx(2.0)

    def test_trig(self):
        assert call_intrinsic("sin", [0.0]) == 0.0
        assert call_intrinsic("cos", [0.0]) == 1.0
        assert call_intrinsic("atan2", [1.0, 1.0]) == pytest.approx(math.pi / 4)

    def test_max_min_variadic(self):
        assert call_intrinsic("max", [1, 5, 3]) == 5
        assert call_intrinsic("amax1", [1.0, 5.0, 3.0]) == 5.0
        assert call_intrinsic("min0", [4, 2]) == 2
        assert call_intrinsic("amin1", [4.0, 2.0]) == 2.0

    def test_amax1_returns_float(self):
        assert isinstance(call_intrinsic("amax1", [1, 2]), float)

    def test_mod_sign_of_first_arg(self):
        assert call_intrinsic("mod", [7, 3]) == 1
        assert call_intrinsic("mod", [-7, 3]) == -1
        assert call_intrinsic("mod", [7, -3]) == 1

    def test_sign(self):
        assert call_intrinsic("sign", [3.0, -1.0]) == -3.0
        assert call_intrinsic("sign", [-3.0, 2.0]) == 3.0
        assert call_intrinsic("isign", [5, -1]) == -5

    def test_conversions(self):
        assert call_intrinsic("int", [3.9]) == 3
        assert call_intrinsic("int", [-3.9]) == -3
        assert call_intrinsic("nint", [3.6]) == 4
        assert call_intrinsic("float", [3]) == 3.0
        assert call_intrinsic("dble", [2]) == 2.0
        assert call_intrinsic("aint", [2.7]) == 2.0

    def test_char_functions(self):
        assert call_intrinsic("len", ["abc"]) == 3
        assert call_intrinsic("index", ["hello", "ll"]) == 3
        assert call_intrinsic("ichar", ["A"]) == 65


class TestErrors:
    def test_unknown_intrinsic(self):
        with pytest.raises(InterpError):
            call_intrinsic("frobnicate", [1])

    def test_domain_error_wrapped(self):
        with pytest.raises(InterpError):
            call_intrinsic("sqrt", [-1.0])
