"""Branch-structure rules for regions (§5.2, Figure 7)."""

from repro.analysis.dependency import build_sldp
from repro.analysis.frame import build_frame_program
from repro.fortran import ast as A
from repro.fortran.parser import parse_source
from repro.sync.regions import upper_bound_region


def region_for(src: str, array="v", kind=None):
    frame = build_frame_program(parse_source(src))
    pairs = [p for p in build_sldp(frame)
             if p.array == array and (kind is None or p.kind == kind)]
    assert len(pairs) == 1, pairs
    return frame, pairs[0], upper_bound_region(frame, pairs[0])


class TestCase1Goto:
    """Fig 7(a): a goto ends the region just before it."""

    def test_region_truncated_at_goto(self):
        src = """\
!$acfd status v, w
!$acfd grid 8 8
program p
  integer i, j, k
  real v(8, 8), w(8, 8)
  do i = 1, 8
    do j = 1, 8
      v(i, j) = 1.0
    end do
  end do
  k = 1
  if (k .gt. 0) goto 50
50 continue
  k = 2
  do i = 2, 7
    do j = 2, 7
      w(i, j) = v(i - 1, j)
    end do
  end do
end
"""
        frame, pair, region = region_for(src, kind="forward")
        gotos = [n for n in frame.nodes
                 if n.kind == "stmt" and isinstance(n.stmt, A.Goto)]
        assert gotos
        assert region.end <= min(g.open for g in gotos)
        assert region.end < pair.reader.open


class TestCase2IfWithReader:
    """Fig 7(b)/(c): an IF block containing an R-type loop ends the
    region before the block; without one, the block is only excluded."""

    SRC_WITH_READER = """\
!$acfd status v, w
!$acfd grid 8 8
program p
  integer i, j
  logical flag
  real v(8, 8), w(8, 8)
  do i = 1, 8
    do j = 1, 8
      v(i, j) = 1.0
    end do
  end do
  if (flag) then
    do i = 2, 7
      do j = 2, 7
        w(i, j) = v(i, j - 1)
      end do
    end do
  end if
  do i = 2, 7
    do j = 2, 7
      w(i, j) = v(i - 1, j)
    end do
  end do
end
"""

    def test_region_ends_before_if_with_reader(self):
        frame, pairs = (build_frame_program(parse_source(self.SRC_WITH_READER)),
                        None)
        pairs = build_sldp(frame)
        v_pairs = [p for p in pairs if p.array == "v"]
        assert len(v_pairs) == 2  # conditional reader + main reader
        if_nodes = [n for n in frame.nodes if n.kind == "if"]
        assert len(if_nodes) == 1
        for pair in v_pairs:
            region = upper_bound_region(frame, pair)
            assert region.end <= if_nodes[0].open

    def test_if_without_reader_only_excluded(self):
        src = """\
!$acfd status v, w
!$acfd grid 8 8
program p
  integer i, j
  logical flag
  real v(8, 8), w(8, 8), z
  do i = 1, 8
    do j = 1, 8
      v(i, j) = 1.0
    end do
  end do
  if (flag) then
    z = 1.0
  end if
  do i = 2, 7
    do j = 2, 7
      w(i, j) = v(i - 1, j)
    end do
  end do
end
"""
        frame, pair, region = region_for(src, kind="forward")
        if_node = [n for n in frame.nodes if n.kind == "if"][0]
        # region extends past the IF...
        assert region.end == pair.reader.open
        assert region.end > if_node.close
        # ...but no placement inside it
        for p in region.allowed:
            assert not (if_node.open < p <= if_node.close)
        assert if_node.open in region.allowed


class TestCase3StartInsideArm:
    """Fig 7(d)/(e): a starting point inside an IF arm hoists out unless
    an R-type loop follows in the *same* arm."""

    def test_hoists_out_of_arm(self):
        src = """\
!$acfd status v, w
!$acfd grid 8 8
program p
  integer i, j
  logical flag
  real v(8, 8), w(8, 8)
  if (flag) then
    do i = 1, 8
      do j = 1, 8
        v(i, j) = 1.0
      end do
    end do
  end if
  do i = 2, 7
    do j = 2, 7
      w(i, j) = v(i - 1, j)
    end do
  end do
end
"""
        frame, pair, region = region_for(src, kind="forward")
        if_node = [n for n in frame.nodes if n.kind == "if"][0]
        assert region.start == if_node.close + 1

    def test_fig7e_reader_in_other_arm_does_not_pin(self):
        src = """\
!$acfd status v, w
!$acfd grid 8 8
program p
  integer i, j
  logical flag
  real v(8, 8), w(8, 8)
  if (flag) then
    do i = 1, 8
      do j = 1, 8
        v(i, j) = 1.0
      end do
    end do
  else
    do i = 2, 7
      do j = 2, 7
        w(i, j) = v(i, j - 1)
      end do
    end do
  end if
  do i = 2, 7
    do j = 2, 7
      w(i, j) = v(i - 1, j)
    end do
  end do
end
"""
        frame = build_frame_program(parse_source(src))
        pairs = build_sldp(frame)
        if_node = [n for n in frame.nodes if n.kind == "if"][0]
        # the pair whose reader is the final loop: its start hoists out of
        # the if-then arm even though the ELSE arm holds an R-type loop —
        # "they cannot be executed at the same time" (Fig 7e)
        main_reader_pairs = [
            p for p in pairs
            if p.array == "v" and p.reader.open > if_node.close]
        assert main_reader_pairs
        region = upper_bound_region(frame, main_reader_pairs[0])
        assert region.start == if_node.close + 1

    def test_reader_later_in_same_arm_pins(self):
        src = """\
!$acfd status v, w
!$acfd grid 8 8
program p
  integer i, j
  logical flag
  real v(8, 8), w(8, 8)
  if (flag) then
    do i = 1, 8
      do j = 1, 8
        v(i, j) = 1.0
      end do
    end do
    do i = 2, 7
      do j = 2, 7
        w(i, j) = v(i, j - 1)
      end do
    end do
  end if
end
"""
        frame = build_frame_program(parse_source(src))
        pairs = [p for p in build_sldp(frame) if p.array == "v"]
        assert len(pairs) == 1
        region = upper_bound_region(frame, pairs[0])
        if_node = [n for n in frame.nodes if n.kind == "if"][0]
        # start stays inside the arm
        assert region.start <= if_node.close
        assert region.start == pairs[0].writer.close + 1
