"""Minimum-intersection combining (§5.1.2, Figure 6).

Includes the exact Figure 6 instance (six regions combining into two) and
a hypothesis property checking the sweep is minimal against brute force on
random interval families.
"""

import itertools
from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sync.combine import combine_regions, combining_stats
from repro.sync.regions import SyncRegion


def make_region(start: int, end: int, array: str = "v",
                distances=None) -> SyncRegion:
    pair = SimpleNamespace(array=array,
                           distances=distances or {0: (1, 1)},
                           irregular=False)
    return SyncRegion(pair=pair, start=start, end=end,
                      allowed=list(range(start, end + 1)))


class TestFigure6:
    #: Figure 6(a): six sorted upper-bound regions whose optimal
    #: combination is two groups (the first three overlap, the last three
    #: overlap, and the two clusters are disjoint).
    FIG6 = [(0, 6), (2, 8), (4, 10), (12, 18), (14, 20), (16, 22)]

    def test_six_regions_combine_into_two(self):
        regions = [make_region(a, b) for a, b in self.FIG6]
        groups = combine_regions(regions)
        assert len(groups) == 2
        assert len(groups[0].regions) == 3
        assert len(groups[1].regions) == 3

    def test_placements_inside_intersections(self):
        regions = [make_region(a, b) for a, b in self.FIG6]
        for group in combine_regions(regions):
            for region in group.regions:
                assert group.placement in region.allowed

    def test_greedy_beats_bad_grouping(self):
        # Figure 6(c)'s warning: a non-sorted strategy can produce 3
        # groups; the sorted sweep must produce 2
        before, after, percent = combining_stats(
            [make_region(a, b) for a, b in self.FIG6])
        assert (before, after) == (6, 2)
        assert percent == 100.0 * 4 / 6


class TestBasicProperties:
    def test_empty(self):
        assert combine_regions([]) == []

    def test_single(self):
        groups = combine_regions([make_region(3, 7)])
        assert len(groups) == 1
        assert groups[0].placement == 7  # latest legal slot

    def test_disjoint_stay_separate(self):
        groups = combine_regions([make_region(0, 2), make_region(5, 8)])
        assert len(groups) == 2

    def test_nested_regions_merge(self):
        groups = combine_regions([make_region(0, 10), make_region(4, 6)])
        assert len(groups) == 1
        assert 4 <= groups[0].placement <= 6

    def test_chain_needs_two(self):
        # [0,4], [3,7], [6,10]: 0-4 & 3-7 intersect at {3,4}; adding 6-10
        # empties the intersection → two groups
        groups = combine_regions([make_region(0, 4), make_region(3, 7),
                                  make_region(6, 10)])
        assert len(groups) == 2

    def test_unsorted_input(self):
        groups = combine_regions([make_region(12, 18), make_region(0, 6),
                                  make_region(2, 8), make_region(4, 10)])
        assert len(groups) == 2


class TestAggregation:
    def test_distances_merged_per_array(self):
        regions = [
            make_region(0, 5, "v", {0: (1, 0)}),
            make_region(1, 6, "v", {0: (0, 2), 1: (1, 1)}),
            make_region(2, 7, "w", {1: (1, 1)}),
        ]
        groups = combine_regions(regions)
        assert len(groups) == 1
        merged = groups[0].distances()
        assert merged["v"][0] == (1, 2)
        assert merged["v"][1] == (1, 1)
        assert merged["w"][1] == (1, 1)
        assert groups[0].arrays == ["v", "w"]

    def test_irregular_arrays_reported(self):
        r = make_region(0, 3)
        r.pair.irregular = True
        groups = combine_regions([r, make_region(1, 4, "w")])
        assert groups[0].irregular_arrays() == {"v"}


def brute_force_min_piercing(intervals) -> int:
    """Smallest number of points hitting every interval (exhaustive)."""
    points = sorted({p for a, b in intervals for p in (a, b)})
    for k in range(1, len(intervals) + 1):
        for combo in itertools.combinations(points, k):
            if all(any(a <= p <= b for p in combo) for a, b in intervals):
                return k
    return len(intervals)


@given(st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 12)).map(
        lambda t: (t[0], t[0] + t[1])),
    min_size=1, max_size=7))
@settings(max_examples=60, deadline=None)
def test_property_greedy_is_minimal(intervals):
    regions = [make_region(a, b) for a, b in intervals]
    groups = combine_regions(regions)
    assert len(groups) == brute_force_min_piercing(intervals)
    # soundness: every region is in exactly one group and its placement
    # is legal for it
    seen = 0
    for group in groups:
        for region in group.regions:
            assert group.placement in region.allowed
        seen += len(group.regions)
    assert seen == len(regions)
