"""Interprocedural combining (§5.3, Figure 8): 3 syncs become 1."""

from repro.analysis.dependency import build_sldp
from repro.analysis.frame import build_frame_program
from repro.fortran.parser import parse_source
from repro.sync.combine import combine_regions
from repro.sync.interproc import subtree_has_rtype, subtree_has_rtype_after
from repro.sync.regions import upper_bound_region

#: Figure 8: main calls subroutine a twice and subroutine b once; each
#: callee ends with an A-type loop whose synchronization region reaches
#: the end of the subroutine.  All three regions hoist into main and,
#: ending before the R-type loop, combine into a single synchronization.
FIG8 = """\
!$acfd status u, v, w, r
!$acfd grid 8 8
program fig8
  integer i, j
  real u(8, 8), v(8, 8), w(8, 8), r(8, 8)
  common /f/ u, v, w, r
  call a()
  call b()
  call a()
  do i = 2, 7
    do j = 2, 7
      r(i, j) = u(i - 1, j) + v(i + 1, j) + w(i, j - 1)
    end do
  end do
end
subroutine a()
  integer i, j
  common /f/ u(8, 8), v(8, 8), w(8, 8), r(8, 8)
  real u, v, w, r
  do i = 1, 8
    do j = 1, 8
      u(i, j) = float(i) + 1.0
      v(i, j) = float(j) + 2.0
    end do
  end do
end
subroutine b()
  integer i, j
  common /f/ u(8, 8), v(8, 8), w(8, 8), r(8, 8)
  real u, v, w, r
  do i = 1, 8
    do j = 1, 8
      w(i, j) = float(i + j)
    end do
  end do
end
"""


def setup():
    frame = build_frame_program(parse_source(FIG8))
    pairs = build_sldp(frame)
    return frame, pairs


class TestFigure8:
    def test_three_forward_pairs(self):
        frame, pairs = setup()
        fwd = [p for p in pairs if p.kind == "forward"]
        # u and v from the second call a (the first call's writes are
        # rewritten by the second — redundant-pair elimination), w from b
        arrays = sorted(p.array for p in fwd)
        assert arrays == ["u", "v", "w"]

    def test_regions_hoist_out_of_subroutines(self):
        frame, pairs = setup()
        calls = [n for n in frame.nodes if n.kind == "call"]
        assert len(calls) == 3
        for pair in pairs:
            if pair.kind != "forward":
                continue
            region = upper_bound_region(frame, pair)
            owning_call = next(c for c in calls
                               if c.open < pair.writer.open
                               and pair.writer.close < c.close)
            assert region.start >= owning_call.close + 1, \
                f"{pair.array} region failed to hoist out of the call"

    def test_three_syncs_combine_into_one(self):
        frame, pairs = setup()
        regions = [upper_bound_region(frame, p) for p in pairs
                   if p.kind == "forward"]
        assert len(regions) == 3
        groups = combine_regions(regions)
        assert len(groups) == 1
        assert sorted(groups[0].arrays) == ["u", "v", "w"]

    def test_combined_placement_in_main_after_last_call(self):
        frame, pairs = setup()
        regions = [upper_bound_region(frame, p) for p in pairs
                   if p.kind == "forward"]
        group = combine_regions(regions)[0]
        calls = [n for n in frame.nodes if n.kind == "call"]
        reader = [p.reader for p in pairs if p.kind == "forward"][0]
        assert group.placement > max(c.close for c in calls)
        assert group.placement <= reader.open


class TestPredicates:
    def test_subtree_has_rtype(self):
        frame, _ = setup()
        calls = [n for n in frame.nodes if n.kind == "call"]
        # callees contain no R-type loop on their own written arrays
        for c in calls:
            for array in ("u", "v", "w"):
                assert not subtree_has_rtype(c, array)

    def test_subtree_has_rtype_after(self):
        frame, _ = setup()
        root = frame.root
        assert subtree_has_rtype_after(root, 0, "u")
        # nothing reads u after the reader loop ends
        reader = frame.field_loop_instances[-1]
        assert not subtree_has_rtype_after(root, reader.close + 1, "u")


class TestReaderInsideCalleePins:
    def test_region_stays_inside_call_with_reader(self):
        src = """\
!$acfd status u
!$acfd grid 8 8
program p
  real u(8, 8)
  common /f/ u
  call ab()
  call ab()
end
subroutine ab()
  integer i, j
  common /f/ u(8, 8)
  real u
  do i = 1, 8
    do j = 1, 8
      u(i, j) = u(i, j) + 1.0
    end do
  end do
  do i = 2, 7
    do j = 2, 7
      x = u(i - 1, j)
    end do
  end do
end
"""
        frame = build_frame_program(parse_source(src))
        pairs = build_sldp(frame)
        # writer -> reader inside the same call instance: the reader after
        # the writer pins the start inside the subroutine
        same_call = [p for p in pairs if p.kind == "forward"
                     and p.writer.call_path == p.reader.call_path]
        assert same_call
        for pair in same_call:
            region = upper_bound_region(frame, pair)
            assert region.start == pair.writer.close + 1
