"""Upper-bound synchronization regions: Figure 5 hoisting and bounds."""

from repro.analysis.dependency import build_sldp
from repro.analysis.frame import build_frame_program
from repro.fortran.parser import parse_source
from repro.sync.regions import upper_bound_region


def region_for(src: str, array: str = "v", kind: str | None = None):
    frame = build_frame_program(parse_source(src))
    pairs = [p for p in build_sldp(frame)
             if p.array == array and (kind is None or p.kind == kind)]
    assert len(pairs) == 1, f"expected one pair, got {pairs}"
    return frame, pairs[0], upper_bound_region(frame, pairs[0])


#: Figure 5: A-type loop buried in L3 ⊂ L2 ⊂ L1; the R-type loop is at L1
#: level.  L3 and L2 contain no R-type loop so the starting point hoists
#: out of both; L1 contains the reader so hoisting stops there.
FIG5 = """\
!$acfd status v, w
!$acfd grid 8 8
program fig5
  integer i, j, l1, l2, l3
  real v(8, 8), w(8, 8)
  do l1 = 1, 3
    do l2 = 1, 3
      do l3 = 1, 3
        do i = 1, 8
          do j = 1, 8
            v(i, j) = float(l3)
          end do
        end do
      end do
    end do
    do i = 2, 7
      do j = 2, 7
        w(i, j) = v(i - 1, j)
      end do
    end do
  end do
end
"""


class TestFigure5Hoisting:
    def test_start_hoisted_out_of_l3_and_l2(self):
        frame, pair, region = region_for(FIG5, kind="forward")
        # locate the l2 loop instance: the writer's enclosing loops are
        # [l3, l2, l1] innermost-first
        loops = pair.writer.enclosing_loops()
        assert [l.stmt.var for l in loops] == ["l3", "l2", "l1"]
        l3, l2, l1 = loops
        assert region.start == l2.close + 1, \
            "start must hoist to right after L2"

    def test_start_not_hoisted_past_l1(self):
        frame, pair, region = region_for(FIG5, kind="forward")
        l1 = pair.writer.enclosing_loops()[-1]
        assert region.start > l1.open
        assert region.end <= l1.close

    def test_region_ends_before_reader(self):
        frame, pair, region = region_for(FIG5, kind="forward")
        assert region.end == pair.reader.open

    def test_allowed_slots_inside_region(self):
        _, _, region = region_for(FIG5, kind="forward")
        assert region.allowed
        assert all(region.start <= p <= region.end for p in region.allowed)


#: Fig 5(b) case 2: the reader precedes the writer inside L1 — the region
#: runs from after the writer to the end of L1's body (loop-carried).
FIG5_CASE2 = """\
!$acfd status v, w
!$acfd grid 8 8
program fig5b
  integer i, j, l1
  real v(8, 8), w(8, 8)
  do l1 = 1, 3
    do i = 2, 7
      do j = 2, 7
        w(i, j) = v(i - 1, j)
      end do
    end do
    do i = 1, 8
      do j = 1, 8
        v(i, j) = float(l1)
      end do
    end do
  end do
end
"""


class TestFigure5Case2:
    def test_carried_region_to_loop_end(self):
        frame, pair, region = region_for(FIG5_CASE2, kind="carried")
        carrier = pair.carrier
        assert carrier.stmt.var == "l1"
        assert region.end == carrier.close

    def test_start_after_writer(self):
        frame, pair, region = region_for(FIG5_CASE2, kind="carried")
        assert region.start >= pair.writer.close + 1


class TestUnrelatedLoopExclusion:
    def test_interior_loop_excluded_from_placement(self):
        src = """\
!$acfd status v, w
!$acfd grid 8 8
program p
  integer i, j, k
  real v(8, 8), w(8, 8), z(5)
  do i = 1, 8
    do j = 1, 8
      v(i, j) = 1.0
    end do
  end do
  do k = 1, 5
    z(k) = float(k)
  end do
  do i = 2, 7
    do j = 2, 7
      w(i, j) = v(i - 1, j)
    end do
  end do
end
"""
        frame, pair, region = region_for(src, kind="forward")
        # the z loop between them is an O-type (unrelated) loop: its
        # interior must not be a placement slot
        z_loops = [n for n in frame.nodes
                   if n.kind == "loop" and n.stmt.var == "k"]
        assert len(z_loops) == 1
        z = z_loops[0]
        for p in region.allowed:
            assert not (z.open < p <= z.close), \
                "sync must not be placed inside an unrelated loop"
        # but placement before and after the loop is allowed
        assert z.open in region.allowed
        assert z.close + 1 in region.allowed


class TestDegenerateRegions:
    def test_writer_immediately_before_reader(self):
        src = """\
!$acfd status v, w
!$acfd grid 8 8
program p
  integer i, j
  real v(8, 8), w(8, 8)
  do i = 1, 8
    do j = 1, 8
      v(i, j) = 1.0
    end do
  end do
  do i = 2, 7
    do j = 2, 7
      w(i, j) = v(i - 1, j)
    end do
  end do
end
"""
        _, pair, region = region_for(src, kind="forward")
        assert region.allowed == [pair.writer.close + 1]
