"""Package-level integrity: imports, exports, version."""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.fortran",
    "repro.interp",
    "repro.analysis",
    "repro.partition",
    "repro.sync",
    "repro.codegen",
    "repro.runtime",
    "repro.simulate",
    "repro.core",
    "repro.apps",
    "repro.cli",
    "repro.errors",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", [p for p in SUBPACKAGES
                                  if p not in ("repro.cli", "repro.errors")])
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_api():
    import repro

    assert repro.AutoCFD.__name__ == "AutoCFD"
    acfd = repro.AutoCFD.from_source("""\
!$acfd status v
!$acfd grid 4 4
program t
  real v(4, 4)
  v(1, 1) = 0.0
end
""")
    assert acfd.grid.shape == (4, 4)


def test_docstrings_on_public_modules():
    for name in SUBPACKAGES:
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"
